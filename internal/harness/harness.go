// Package harness regenerates the paper's evaluation: every figure and
// table of §5 has a Run function producing the same rows or series the
// paper reports, plus renderers for terminals.
package harness

import (
	"fmt"
	"strings"

	"dsmtx/internal/stats"
	"dsmtx/internal/workloads"
)

// DefaultCores is the paper's x-axis: 8 to 128 in steps of 8.
func DefaultCores() []int {
	var cores []int
	for c := 8; c <= 128; c += 8 {
		cores = append(cores, c)
	}
	return cores
}

// QuickCores is a coarse sweep for fast runs.
func QuickCores() []int { return []int{8, 16, 32, 64, 96, 128} }

// minCores reports the smallest usable core count for a program's plan.
func minCores(p workloads.Program) int { return p.Plan().MinWorkers() + 2 }

// Fig4Series is one benchmark's speedup curves.
type Fig4Series struct {
	Bench    string
	Paradigm string // the DSMTX paradigm label, e.g. "Spec-DSWP+[S,DOALL,S]"
	Cores    []int
	DSMTX    []float64 // speedup over sequential
	TLS      []float64
	SeqTime  float64 // seconds of virtual time, sequential
}

// RunFigure4 measures speedup-vs-cores for one benchmark (one panel of
// Fig. 4).
func RunFigure4(b *workloads.Benchmark, in workloads.Input, cores []int) (Fig4Series, error) {
	return new(Runner).RunFigure4(b, in, cores)
}

// RunFigure4 measures one Fig. 4 panel through the runner's memo/cache.
func (r *Runner) RunFigure4(b *workloads.Benchmark, in workloads.Input, cores []int) (Fig4Series, error) {
	out := Fig4Series{Bench: b.Name, Paradigm: b.Paradigm}
	seqTime, seqCheck, err := r.runSequential(b, in, KnobNone)
	if err != nil {
		return out, err
	}
	out.SeqTime = seqTime.Seconds()
	for _, c := range cores {
		c = clampCores(b, in, c)
		dres, err := r.runParallel(b, in, workloads.DSMTX, c, KnobNone)
		if err != nil {
			return out, err
		}
		tres, err := r.runParallel(b, in, workloads.TLS, c, KnobNone)
		if err != nil {
			return out, err
		}
		if dres.Checksum != seqCheck || tres.Checksum != seqCheck {
			return out, fmt.Errorf("%s@%d: checksum mismatch (dsmtx %#x tls %#x seq %#x)",
				b.Name, c, dres.Checksum, tres.Checksum, seqCheck)
		}
		out.Cores = append(out.Cores, c)
		out.DSMTX = append(out.DSMTX, seqTime.Seconds()/dres.Elapsed.Seconds())
		out.TLS = append(out.TLS, seqTime.Seconds()/tres.Elapsed.Seconds())
	}
	return out, nil
}

// Fig4Geomean is panel (l): geomean across benchmarks per core count.
type Fig4Geomean struct {
	Cores []int
	DSMTX []float64 // geomean of per-benchmark best-paradigm... see note
	TLS   []float64
	Best  []float64 // "DSMTX Best": max(DSMTX, TLS) per benchmark, as the paper's headline
}

// Geomean folds per-benchmark series into panel (l).
func Geomean(series []Fig4Series) Fig4Geomean {
	if len(series) == 0 {
		return Fig4Geomean{}
	}
	g := Fig4Geomean{Cores: series[0].Cores}
	for i := range g.Cores {
		var d, t, best []float64
		for _, s := range series {
			if i >= len(s.DSMTX) {
				continue
			}
			d = append(d, s.DSMTX[i])
			t = append(t, s.TLS[i])
			best = append(best, max(s.DSMTX[i], s.TLS[i]))
		}
		g.DSMTX = append(g.DSMTX, stats.Geomean(d))
		g.TLS = append(g.TLS, stats.Geomean(t))
		g.Best = append(g.Best, stats.Geomean(best))
	}
	return g
}

// RenderFigure4 draws one panel as an ASCII chart plus a table.
func RenderFigure4(s Fig4Series) string {
	var b strings.Builder
	ser := []stats.Series{
		{Name: s.Paradigm + " (DSMTX)"},
		{Name: "TLS"},
	}
	for i, c := range s.Cores {
		ser[0].Add(float64(c), s.DSMTX[i])
		ser[1].Add(float64(c), s.TLS[i])
	}
	b.WriteString(stats.Plot("Figure 4: "+s.Bench, "cores", "speedup", ser, 64, 16))
	tb := stats.Table{Header: []string{"cores", "DSMTX", "TLS"}}
	for i, c := range s.Cores {
		tb.AddRow(fmt.Sprint(c), stats.FormatSpeedup(s.DSMTX[i]), stats.FormatSpeedup(s.TLS[i]))
	}
	b.WriteString(tb.String())
	return b.String()
}

// RenderGeomean draws panel (l).
func RenderGeomean(g Fig4Geomean) string {
	var b strings.Builder
	ser := []stats.Series{{Name: "Spec-DSWP (DSMTX)"}, {Name: "TLS"}, {Name: "DSMTX Best"}}
	for i, c := range g.Cores {
		ser[0].Add(float64(c), g.DSMTX[i])
		ser[1].Add(float64(c), g.TLS[i])
		ser[2].Add(float64(c), g.Best[i])
	}
	b.WriteString(stats.Plot("Figure 4(l): geomean", "cores", "speedup", ser, 64, 16))
	tb := stats.Table{Header: []string{"cores", "DSMTX", "TLS", "best"}}
	for i, c := range g.Cores {
		tb.AddRow(fmt.Sprint(c), stats.FormatSpeedup(g.DSMTX[i]),
			stats.FormatSpeedup(g.TLS[i]), stats.FormatSpeedup(g.Best[i]))
	}
	b.WriteString(tb.String())
	return b.String()
}

// Fig5aRow is one benchmark's bandwidth requirement at consecutive core
// counts (Fig. 5a).
type Fig5aRow struct {
	Bench string
	Cores []int
	KBps  []float64
}

// RunFigure5a measures application bandwidth at consecutive core counts
// starting from the plan's minimum, under Spec-DSWP (as the paper does).
func RunFigure5a(b *workloads.Benchmark, in workloads.Input) (Fig5aRow, error) {
	return new(Runner).RunFigure5a(b, in)
}

// RunFigure5a measures one Fig. 5a row through the runner's memo/cache.
func (r *Runner) RunFigure5a(b *workloads.Benchmark, in workloads.Input) (Fig5aRow, error) {
	row := Fig5aRow{Bench: b.Name}
	base := minCores(b.NewDSMTX(in, 0))
	for i := 0; i < 4; i++ {
		c := base + i
		res, err := r.runParallel(b, in, workloads.DSMTX, c, KnobNone)
		if err != nil {
			return row, err
		}
		row.Cores = append(row.Cores, c)
		row.KBps = append(row.KBps, res.Bandwidth()/1e3)
	}
	return row, nil
}

// RenderFigure5a prints the bandwidth table.
func RenderFigure5a(rows []Fig5aRow) string {
	tb := stats.Table{Header: []string{"benchmark", "cores", "+1", "+2", "+3 (kBps)"}}
	for _, r := range rows {
		cells := []string{r.Bench}
		for _, v := range r.KBps {
			cells = append(cells, fmt.Sprintf("%.0f", v))
		}
		tb.AddRow(cells...)
	}
	return "Figure 5(a): bandwidth requirement (kBps) at consecutive core counts\n" + tb.String()
}

// Fig5bRow compares batched queues against per-datum MPI sends (Fig. 5b).
type Fig5bRow struct {
	Bench        string
	Optimized    float64 // speedup with batched queues
	NonOptimized float64 // speedup flushing every produce
}

// RunFigure5b measures the communication optimization's effect at the given
// core count (the paper uses 128).
func RunFigure5b(b *workloads.Benchmark, in workloads.Input, cores int) (Fig5bRow, error) {
	return new(Runner).RunFigure5b(b, in, cores)
}

// RunFigure5b measures one Fig. 5b row through the runner's memo/cache.
func (r *Runner) RunFigure5b(b *workloads.Benchmark, in workloads.Input, cores int) (Fig5bRow, error) {
	row := Fig5bRow{Bench: b.Name}
	seqTime, _, err := r.runSequential(b, in, KnobNone)
	if err != nil {
		return row, err
	}
	opt, err := r.runParallel(b, in, workloads.DSMTX, cores, KnobNone)
	if err != nil {
		return row, err
	}
	unopt, err := r.runParallel(b, in, workloads.DSMTX, cores, KnobQueueUnopt)
	if err != nil {
		return row, err
	}
	row.Optimized = seqTime.Seconds() / opt.Elapsed.Seconds()
	row.NonOptimized = seqTime.Seconds() / unopt.Elapsed.Seconds()
	return row, nil
}

// RenderFigure5b prints the optimization comparison.
func RenderFigure5b(rows []Fig5bRow) string {
	tb := stats.Table{Header: []string{"benchmark", "NonOptimized", "Optimized"}}
	var non, opt []float64
	for _, r := range rows {
		tb.AddRow(r.Bench, stats.FormatSpeedup(r.NonOptimized), stats.FormatSpeedup(r.Optimized))
		non = append(non, r.NonOptimized)
		opt = append(opt, r.Optimized)
	}
	tb.AddRow("geomean", stats.FormatSpeedup(stats.Geomean(non)), stats.FormatSpeedup(stats.Geomean(opt)))
	return "Figure 5(b): effect of communication optimization\n" + tb.String()
}

// Fig6Row is one benchmark/core-count recovery-overhead breakdown.
type Fig6Row struct {
	Bench    string
	Cores    int
	Clean    float64 // speedup with no misspeculation
	MIS      float64 // speedup at the given misspeculation rate
	Misspecs uint64
	// Phase shares of the total overhead (seconds of virtual time).
	ERM, FLQ, SEQ, RFP float64
}

// Fig6Benches are the benchmarks with input-dependent misspeculation (the
// others are excluded, as in the paper).
func Fig6Benches() []string {
	return []string{"130.li", "197.parser", "256.bzip2", "crc32", "blackscholes", "swaptions"}
}

// RunFigure6 measures recovery overhead at the given misspeculation rate
// (the paper uses 0.1%).
func RunFigure6(b *workloads.Benchmark, in workloads.Input, rate float64, cores int) (Fig6Row, error) {
	return new(Runner).RunFigure6(b, in, rate, cores)
}

// RunFigure6 measures one recovery cell through the runner's memo/cache.
func (r *Runner) RunFigure6(b *workloads.Benchmark, in workloads.Input, rate float64, cores int) (Fig6Row, error) {
	row := Fig6Row{Bench: b.Name, Cores: cores}
	seqTime, _, err := r.runSequential(b, in, KnobNone)
	if err != nil {
		return row, err
	}
	clean, err := r.runParallel(b, in, workloads.DSMTX, cores, KnobNone)
	if err != nil {
		return row, err
	}
	mis := in
	mis.MisspecRate = rate
	// The sequential baseline must process the same (corrupted) input.
	misSeqTime, misCheck, err := r.runSequential(b, mis, KnobNone)
	if err != nil {
		return row, err
	}
	misRes, err := r.runParallel(b, mis, workloads.DSMTX, cores, KnobNone)
	if err != nil {
		return row, err
	}
	if misRes.Checksum != misCheck {
		return row, fmt.Errorf("%s@%d: misspec run checksum mismatch", b.Name, cores)
	}
	row.Clean = seqTime.Seconds() / clean.Elapsed.Seconds()
	row.MIS = misSeqTime.Seconds() / misRes.Elapsed.Seconds()
	row.Misspecs = misRes.Misspecs
	row.ERM = misRes.ERM.Seconds()
	row.FLQ = misRes.FLQ.Seconds()
	row.SEQ = misRes.SEQ.Seconds()
	row.RFP = misRes.RFP.Seconds()
	return row, nil
}

// RenderFigure6 prints the recovery breakdown.
func RenderFigure6(rows []Fig6Row) string {
	tb := stats.Table{Header: []string{
		"benchmark", "cores", "clean", "MIS", "misspecs", "ERM ms", "FLQ ms", "SEQ ms", "RFP ms"}}
	for _, r := range rows {
		tb.AddRow(r.Bench, fmt.Sprint(r.Cores),
			stats.FormatSpeedup(r.Clean), stats.FormatSpeedup(r.MIS), fmt.Sprint(r.Misspecs),
			fmt.Sprintf("%.3f", r.ERM*1e3), fmt.Sprintf("%.3f", r.FLQ*1e3),
			fmt.Sprintf("%.3f", r.SEQ*1e3), fmt.Sprintf("%.3f", r.RFP*1e3))
	}
	return "Figure 6: recovery overhead at misspeculation rate 0.1%\n" + tb.String()
}

// RenderTable2 prints the benchmark inventory.
func RenderTable2() string {
	tb := stats.Table{Header: []string{"Benchmark", "Source Suite", "Description", "Parallelization Paradigm", "Speculation"}}
	for _, b := range workloads.All() {
		tb.AddRow(b.Name, b.Suite, b.Description, b.Paradigm, b.SpecTypes)
	}
	return "Table 2: Benchmark Details\n" + tb.String()
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
