package expsched

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Cache is a content-addressed on-disk result store. A key is the SHA-256
// of the cache fingerprint (a digest of everything that can change a
// result — simulator sources, record schema) concatenated with the
// canonical JSON of a point's full specification, so any change to either
// silently addresses fresh entries and stale ones are simply never read
// again. Entries are JSON files named by their key under a two-level
// fan-out directory; writes go through a temp file and rename, so
// concurrent writers of the same (deterministic) entry race benignly.
type Cache struct {
	dir         string
	fingerprint string
}

// OpenCache prepares a cache rooted at dir. The directory is created if
// missing; fingerprint scopes every key (see Cache).
func OpenCache(dir, fingerprint string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("expsched: empty cache dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("expsched: cache dir: %w", err)
	}
	return &Cache{dir: dir, fingerprint: fingerprint}, nil
}

// Dir reports the cache root.
func (c *Cache) Dir() string { return c.dir }

// entry is the on-disk layout: the spec is echoed for debuggability (the
// key alone is opaque), the value is kept raw so Get can decode it into
// the caller's type.
type entry struct {
	Fingerprint string          `json:"fingerprint"`
	Spec        json.RawMessage `json:"spec"`
	Value       json.RawMessage `json:"value"`
}

// Key derives the content address for a point specification. spec must
// marshal deterministically (structs do: field order is fixed).
func (c *Cache) Key(spec any) (string, error) {
	js, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("expsched: marshal spec: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(c.fingerprint))
	h.Write([]byte{'\n'})
	h.Write(js)
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get looks a spec up and, on a hit, decodes the stored value into v
// (a pointer). Unreadable or corrupt entries count as misses: the cache
// must never be able to fail a run that would succeed without it. A
// truncated or garbled file is additionally deleted, so the recompute's
// Put rewrites it instead of leaving the corruption to be re-parsed on
// every future lookup. (A fingerprint mismatch is not corruption — the
// entry belongs to another checkout state — so it is left in place.)
func (c *Cache) Get(spec, v any) (bool, error) {
	key, err := c.Key(spec)
	if err != nil {
		return false, err
	}
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, nil
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		os.Remove(path)
		return false, nil
	}
	if e.Fingerprint != c.fingerprint {
		return false, nil
	}
	if err := json.Unmarshal(e.Value, v); err != nil {
		os.Remove(path)
		return false, nil
	}
	return true, nil
}

// CacheStats is the cache's on-disk footprint.
type CacheStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Stats walks the cache directory and reports entry count and total size
// (load harnesses report cache growth from it). Files still being written
// (temp files) are not counted.
func (c *Cache) Stats() (CacheStats, error) {
	var st CacheStats
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		info, err := d.Info()
		if err != nil {
			// Racing a concurrent delete is benign.
			return nil
		}
		st.Entries++
		st.Bytes += info.Size()
		return nil
	})
	return st, err
}

// Put stores a spec's value. The write is atomic (temp file + rename) so
// a reader never observes a partial entry.
func (c *Cache) Put(spec, v any) error {
	key, err := c.Key(spec)
	if err != nil {
		return err
	}
	specJS, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("expsched: marshal spec: %w", err)
	}
	valJS, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("expsched: marshal value: %w", err)
	}
	out, err := json.MarshalIndent(entry{Fingerprint: c.fingerprint, Spec: specJS, Value: valJS}, "", "  ")
	if err != nil {
		return err
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("expsched: cache subdir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), key+".tmp*")
	if err != nil {
		return fmt.Errorf("expsched: cache write: %w", err)
	}
	if _, err := tmp.Write(append(out, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("expsched: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("expsched: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("expsched: cache write: %w", err)
	}
	return nil
}
