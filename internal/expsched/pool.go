// Package expsched schedules independent experiment points across host
// CPUs and caches their results on disk, content-addressed by the full
// point configuration plus a build/content fingerprint.
//
// Every figure point of the evaluation (workload × cores × mode) is an
// isolated, deterministic virtual-time simulation: points share nothing
// and commit nothing, so host-side concurrency cannot change any
// simulated outcome. The scheduler exploits that — it fans points over a
// bounded worker pool and returns results in deterministic submission
// order, so everything rendered from them is byte-identical to a
// sequential run. The cache exploits the determinism a second time: a
// point's result is a pure function of its configuration and the
// simulator sources, so a content hash of the two addresses the result
// forever.
package expsched

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Map runs fn for every index in [0, n) on at most workers concurrent
// goroutines and returns the results in index order. With workers <= 1 it
// degenerates to a plain sequential loop that stops at the first error.
// In parallel mode every started call runs to completion, indices not
// yet started when a failure lands are abandoned, and the lowest-index
// error among the calls that ran is returned. A panic inside fn is
// captured and surfaced as that index's error.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := call(fn, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// After a failure, drain the remaining indices without
				// running them: their results would be discarded anyway.
				if failed.Load() {
					errs[i] = errSkipped
					continue
				}
				v, err := call(fn, i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && err != errSkipped {
			return nil, err
		}
	}
	return out, nil
}

// errSkipped marks indices abandoned after another index failed; it is
// never returned to the caller (a real error always precedes it).
var errSkipped = fmt.Errorf("expsched: skipped after earlier failure")

// call invokes fn, converting a panic into an error so one bad point
// reports like any other failure instead of killing sibling workers
// mid-simulation.
func call[T any](fn func(i int) (T, error), i int) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("expsched: point %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}
