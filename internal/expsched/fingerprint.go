package expsched

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SourceFingerprint digests every non-test .go file under the given
// directories (path-sorted, path and content both hashed), producing a
// stable identifier for "the code that computes results". Cache keys
// scoped by it invalidate automatically when any of those sources change,
// while edits elsewhere — rendering, CLI, docs — keep entries live.
// Missing directories are an error: silently fingerprinting less than the
// caller asked for would let stale results survive a code change.
func SourceFingerprint(dirs ...string) (string, error) {
	var files []string
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return "", fmt.Errorf("expsched: fingerprint %s: %w", dir, err)
		}
	}
	if len(files) == 0 {
		return "", fmt.Errorf("expsched: fingerprint: no .go files under %v", dirs)
	}
	sort.Strings(files)
	h := sha256.New()
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return "", fmt.Errorf("expsched: fingerprint: %w", err)
		}
		fmt.Fprintf(h, "%s %d\n", filepath.ToSlash(path), len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ExecutableFingerprint digests the running binary — the coarse fallback
// when sources are not reachable (installed binaries run outside the
// repo). Any rebuild invalidates the cache, which is safe, just less
// precise than SourceFingerprint.
func ExecutableFingerprint() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", fmt.Errorf("expsched: fingerprint: %w", err)
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", fmt.Errorf("expsched: fingerprint: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("expsched: fingerprint: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
