package expsched

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapOrderAndConcurrency: results come back in index order regardless
// of worker count, and the pool really runs concurrently but never above
// its bound.
func TestMapOrderAndConcurrency(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		var inFlight, peak atomic.Int64
		out, err := Map(workers, 40, func(i int) (int, error) {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		bound := int64(workers)
		if workers <= 1 {
			bound = 1
		}
		if workers > 40 {
			bound = 40
		}
		if peak.Load() > bound {
			t.Errorf("workers=%d: peak concurrency %d exceeds bound %d", workers, peak.Load(), bound)
		}
	}
}

// TestMapError: a failing index surfaces as an error and no partial
// results leak; in sequential mode later indices never run.
func TestMapError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(1, 10, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, fmt.Errorf("boom at %d", i)
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom at 3") {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 4 {
		t.Fatalf("sequential mode ran %d calls, want 4 (stop at first error)", ran.Load())
	}
	_, err = Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, fmt.Errorf("boom at %d", i)
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom at") {
		t.Fatalf("parallel err = %v", err)
	}
}

// TestMapPanic: a panicking point reports as an error, with the panic
// value and a stack, instead of killing the process.
func TestMapPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 5, func(i int) (int, error) {
			if i == 2 {
				panic("kernel deadlock")
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "kernel deadlock") {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

// TestMapEmpty: zero points is a no-op, not a hang.
func TestMapEmpty(t *testing.T) {
	out, err := Map(8, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

type testSpec struct {
	Bench string
	Cores int
	Seed  uint64
}

type testValue struct {
	Elapsed int64
	Check   uint64 // full-range uint64: round-trip must be exact
	Speedup float64
}

// TestCacheRoundTrip: Put then Get returns the value bit-exactly —
// including uint64 values above 2^53, which would corrupt through a
// float64 intermediate.
func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "fp1")
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec{Bench: "164.gzip", Cores: 32, Seed: 42}
	want := testValue{Elapsed: 123456789012345, Check: 0xfedcba9876543210, Speedup: 17.25}
	var got testValue
	if ok, err := c.Get(spec, &got); ok || err != nil {
		t.Fatalf("cold Get = %v, %v", ok, err)
	}
	if err := c.Put(spec, want); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Get(spec, &got)
	if err != nil || !ok {
		t.Fatalf("warm Get = %v, %v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

// TestCacheKeying: different specs and different fingerprints address
// different entries; the same spec+fingerprint addresses the same one.
func TestCacheKeying(t *testing.T) {
	dir := t.TempDir()
	c1, _ := OpenCache(dir, "fp1")
	c2, _ := OpenCache(dir, "fp2")
	spec := testSpec{Bench: "crc32", Cores: 8}
	if err := c1.Put(spec, testValue{Elapsed: 1}); err != nil {
		t.Fatal(err)
	}
	var v testValue
	if ok, _ := c2.Get(spec, &v); ok {
		t.Fatal("fingerprint change must miss")
	}
	other := spec
	other.Cores = 16
	if ok, _ := c1.Get(other, &v); ok {
		t.Fatal("different spec must miss")
	}
	c1b, _ := OpenCache(dir, "fp1")
	if ok, _ := c1b.Get(spec, &v); !ok || v.Elapsed != 1 {
		t.Fatalf("same spec+fingerprint must hit: ok=%v v=%+v", ok, v)
	}
}

// TestCacheCorruptEntryIsMiss: a truncated or garbled entry file degrades
// to a miss — never an error — and is deleted so the recompute's Put
// rewrites it instead of leaving corruption to be re-parsed forever. A
// fingerprint mismatch, by contrast, is someone else's valid entry and
// stays on disk.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	c, _ := OpenCache(t.TempDir(), "fp")
	spec := testSpec{Bench: "x"}
	key, _ := c.Key(spec)
	path := filepath.Join(c.Dir(), key[:2], key+".json")
	for _, corrupt := range []string{
		"{\"trunc",                 // truncated mid-JSON
		"\x00\x01 not json at all", // garbled
		`{"fingerprint":"fp","spec":{},"value":"not-a-testValue-object"}`, // wrong value shape
	} {
		if err := c.Put(spec, testValue{Elapsed: 9}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
			t.Fatal(err)
		}
		var v testValue
		if ok, err := c.Get(spec, &v); ok || err != nil {
			t.Fatalf("corrupt entry %q: ok=%v err=%v", corrupt, ok, err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry %q not deleted (err=%v)", corrupt, err)
		}
		// The recompute path repairs the cache.
		if err := c.Put(spec, testValue{Elapsed: 10}); err != nil {
			t.Fatal(err)
		}
		if ok, _ := c.Get(spec, &v); !ok || v.Elapsed != 10 {
			t.Fatalf("repaired entry: ok=%v v=%+v", ok, v)
		}
	}

	// A foreign fingerprint is a miss but not corruption: left in place.
	other, _ := OpenCache(c.Dir(), "other-fp")
	var v testValue
	if ok, _ := other.Get(spec, &v); ok {
		t.Fatal("foreign fingerprint must miss")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("foreign-fingerprint entry must survive: %v", err)
	}
}

// TestCacheStats: entry count and byte size track Puts; temp files and
// non-entry files are not counted.
func TestCacheStats(t *testing.T) {
	c, _ := OpenCache(t.TempDir(), "fp")
	st, err := c.Stats()
	if err != nil || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("empty cache stats = %+v, %v", st, err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(testSpec{Bench: "x", Cores: i}, testValue{Elapsed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(c.Dir(), "stray.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats()
	if err != nil || st.Entries != 3 {
		t.Fatalf("stats = %+v, %v (want 3 entries)", st, err)
	}
	if st.Bytes <= 0 {
		t.Fatalf("stats bytes = %d, want > 0", st.Bytes)
	}
}

// TestSourceFingerprint: stable across calls, sensitive to content
// changes, blind to _test.go files, and loud about missing directories.
func TestSourceFingerprint(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package a\n")
	write("b.go", "package a\nvar B = 1\n")
	fp1, err := SourceFingerprint(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := SourceFingerprint(dir)
	if err != nil || fp1 != fp2 {
		t.Fatalf("unstable: %s vs %s (%v)", fp1, fp2, err)
	}
	write("a_test.go", "package a\n")
	fp3, _ := SourceFingerprint(dir)
	if fp3 != fp1 {
		t.Fatal("_test.go files must not affect the fingerprint")
	}
	write("b.go", "package a\nvar B = 2\n")
	fp4, _ := SourceFingerprint(dir)
	if fp4 == fp1 {
		t.Fatal("content change must change the fingerprint")
	}
	if _, err := SourceFingerprint(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing directory must error")
	}
}
