package mpi

import (
	"testing"

	"dsmtx/internal/cluster"
	"dsmtx/internal/platform/vtime"
	"dsmtx/internal/sim"
)

func testWorld(k *sim.Kernel) *World {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.CoresPerNode = 2
	return NewWorld(vtime.New(k, cluster.New(k, cfg)), DefaultCost())
}

// mach recovers the simulated machine behind a vtime-backed test world.
func mach(w *World) *cluster.Machine {
	return w.Platform().(*vtime.Platform).Machine()
}

func TestSendChargesOverhead(t *testing.T) {
	k := sim.NewKernel()
	w := testWorld(k)
	var txDone sim.Time
	k.Spawn("rx", func(p *sim.Proc) { w.Attach(1, p).Recv(0, 1) })
	k.Spawn("tx", func(p *sim.Proc) {
		c := w.Attach(0, p)
		c.Send(1, 1, nil, 8)
		txDone = p.Now()
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	// 500 instructions + 2 per-byte instructions at 3 GHz ≈ 167 ns.
	want := mach(w).Config().InstrTime(502)
	if txDone != want {
		t.Fatalf("send completed at %v, want %v", txDone, want)
	}
}

func TestRecvChargesOverheadAfterArrival(t *testing.T) {
	k := sim.NewKernel()
	w := testWorld(k)
	var rxDone sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		w.Attach(1, p).Recv(0, 1)
		rxDone = p.Now()
	})
	k.Spawn("tx", func(p *sim.Proc) {
		w.Attach(0, p).Send(1, 1, nil, 8)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	cfg := mach(w).Config()
	// Arrival = send cost + wire; then the receiver pays its own overhead.
	wantMin := cfg.InstrTime(502) + cfg.InterNodeLatency + cfg.InstrTime(1290)
	if rxDone < wantMin {
		t.Fatalf("recv completed at %v, want >= %v", rxDone, wantMin)
	}
}

func TestIsendWaitCompletes(t *testing.T) {
	k := sim.NewKernel()
	w := testWorld(k)
	done := false
	k.Spawn("rx", func(p *sim.Proc) { w.Attach(1, p).Recv(0, 2) })
	k.Spawn("tx", func(p *sim.Proc) {
		c := w.Attach(0, p)
		req := c.Isend(1, 2, "data", 8)
		req.Wait()
		req.Wait() // idempotent
		done = true
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Isend/Wait did not complete")
	}
}

func TestTryRecv(t *testing.T) {
	k := sim.NewKernel()
	w := testWorld(k)
	k.Spawn("rx", func(p *sim.Proc) {
		c := w.Attach(1, p)
		if _, ok := c.TryRecv(0, 5); ok {
			t.Error("TryRecv returned message before any send")
		}
		p.Advance(sim.Millisecond)
		if _, ok := c.TryRecv(0, 5); !ok {
			t.Error("TryRecv missed delivered message")
		}
	})
	k.Spawn("tx", func(p *sim.Proc) { w.Attach(0, p).Send(1, 5, nil, 8) })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	k := sim.NewKernel()
	w := testWorld(k)
	ranks := []int{0, 1, 2, 3}
	var releases [4]sim.Time
	var maxArrival sim.Time
	for i, r := range ranks {
		k.Spawn("w", func(p *sim.Proc) {
			c := w.Attach(r, p)
			if r == 0 {
				c.RegisterBarrierMailboxes()
			}
			p.Advance(sim.Duration(r) * 100 * sim.Microsecond)
			if p.Now() > maxArrival {
				maxArrival = p.Now()
			}
			c.Barrier(ranks)
			releases[i] = p.Now()
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, rel := range releases {
		if rel < maxArrival {
			t.Fatalf("rank %d released at %v before last arrival %v", i, rel, maxArrival)
		}
	}
}

// The paper's micro-measurement: fine-grained MPI sends are overhead-bound.
// Streaming 8-byte messages must yield single-digit-to-low-double-digit MB/s
// with the default cost model.
func TestFineGrainedMPIBandwidthIsLow(t *testing.T) {
	k := sim.NewKernel()
	w := testWorld(k)
	const n = 2000
	k.Spawn("rx", func(p *sim.Proc) {
		c := w.Attach(1, p)
		for i := 0; i < n; i++ {
			c.Recv(0, 1)
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		c := w.Attach(0, p)
		for i := 0; i < n; i++ {
			c.Send(1, 1, nil, 8)
		}
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	mbps := float64(n*8) / k.Now().Seconds() / 1e6
	if mbps < 4 || mbps > 40 {
		t.Fatalf("fine-grained MPI bandwidth = %.1f MB/s, want single/low-double digits (paper: 8.1–13.1)", mbps)
	}
}
