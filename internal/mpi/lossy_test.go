package mpi

import (
	"testing"

	"dsmtx/internal/faults"
	"dsmtx/internal/sim"
)

// lossyWorld is testWorld with a fault injector on the machine.
func lossyWorld(t *testing.T, k *sim.Kernel, plan faults.Plan) *World {
	t.Helper()
	w := testWorld(k)
	inj, err := faults.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	mach(w).EnableFaults(inj)
	return w
}

// TestLossyLinkPreservesMPISemantics: under heavy loss the MPI layer's
// contract is untouched — blocking receives complete, messages arrive
// exactly once per send, in order, and a barrier still releases everyone.
func TestLossyLinkPreservesMPISemantics(t *testing.T) {
	const n = 200
	k := sim.NewKernel()
	w := lossyWorld(t, k, faults.Plan{Seed: 3, DropRate: 0.15, AckDropRate: 0.15})
	ranks := []int{0, 1, 2, 3}
	var got []int
	released := 0
	k.Spawn("rx", func(p *sim.Proc) {
		c := w.Attach(1, p)
		for range n {
			msg := c.Recv(0, 7)
			got = append(got, msg.Payload.(int))
		}
		c.Barrier(ranks)
		released++
	})
	k.Spawn("tx", func(p *sim.Proc) {
		c := w.Attach(0, p)
		c.RegisterBarrierMailboxes() // rank 0 is the barrier root
		for i := range n {
			c.Send(1, 7, i, 32)
		}
		c.Barrier(ranks)
		released++
	})
	for _, r := range []int{2, 3} {
		k.Spawn("peer", func(p *sim.Proc) {
			w.Attach(r, p).Barrier(ranks)
			released++
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d: order or exactly-once violated", i, v)
		}
	}
	if released != 4 {
		t.Fatalf("%d ranks left the barrier, want 4", released)
	}
	if s := mach(w).Stats(); s.RetransMessages == 0 {
		t.Fatalf("plan never forced a retransmission: %+v", s)
	}
}
