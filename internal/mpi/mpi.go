// Package mpi provides an MPI-flavoured message-passing layer over the
// simulated cluster, charging per-call instruction overheads to virtual
// time.
//
// The paper measured that a single OpenMPI send/receive pair executes 500 to
// 2,295 instructions to move 8 bytes; those operational overheads — not wire
// bandwidth — are what limit fine-grained communication, and they are the
// reason DSMTX batches produces into larger messages (§4.2, Fig. 5b). The
// Cost fields reproduce that model.
//
// Reliability is below this layer: when fault injection is active the
// cluster's NIC-level ack/retransmit path (cluster.Machine.EnableFaults)
// delivers every message exactly once and in order, so the MPI semantics
// here — blocking receives, non-overtaking per (source, dest) pair — hold
// unchanged on a lossy interconnect; senders only observe the extra wire
// time of retransmissions.
package mpi

import (
	"fmt"

	"dsmtx/internal/platform"
	"dsmtx/internal/trace"
)

// Cost models per-call CPU overheads in instructions. PerByte covers
// marshalling/copy work proportional to message size.
type Cost struct {
	Send    int64   // MPI_Send initiation + completion
	Bsend   int64   // MPI_Bsend: Send plus an extra user-buffer copy
	Isend   int64   // MPI_Isend initiation
	Wait    int64   // MPI_Wait completion for an Isend
	Recv    int64   // MPI_Recv
	PerByte float64 // instructions per payload byte (copies, packing)
}

// DefaultCost matches the paper's reported 500–2,295 instruction range for
// 8-byte transfers. Isend+Wait is costlier per datum, which is why the
// paper measured it as the slowest fine-grained primitive (8.1 MB/s vs
// 13.1 MB/s for MPI_Send).
func DefaultCost() Cost {
	return Cost{
		Send:    500,
		Bsend:   1900,
		Isend:   1300,
		Wait:    1660,
		Recv:    1790,
		PerByte: 0.25,
	}
}

// World is an MPI world: size ranks over an execution platform.
type World struct {
	p    platform.Platform
	cost Cost
}

// NewWorld wraps a platform with MPI call-cost accounting.
func NewWorld(p platform.Platform, cost Cost) *World {
	return &World{p: p, cost: cost}
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.p.Ranks() }

// Platform exposes the underlying execution platform.
func (w *World) Platform() platform.Platform { return w.p }

// InstrTime converts an instruction count to platform time (zero on
// backends without instruction charging).
func (w *World) InstrTime(instructions int64) platform.Duration {
	return w.p.InstrTime(instructions)
}

// Comm binds one rank's endpoint to the process executing it. All blocking
// calls must be made by that process.
type Comm struct {
	w     *World
	ep    platform.Endpoint
	p     platform.Proc
	tr    *trace.Tracer
	track int
}

// Attach creates the communicator for rank, executed by process p.
func (w *World) Attach(rank int, p platform.Proc) *Comm {
	return &Comm{w: w, ep: w.p.Endpoint(rank), p: p}
}

// Rank reports this communicator's rank.
func (c *Comm) Rank() int { return c.ep.Rank() }

// Proc returns the platform process bound to this communicator.
func (c *Comm) Proc() platform.Proc { return c.p }

// Endpoint exposes the raw platform endpoint (for mailbox registration).
func (c *Comm) Endpoint() platform.Endpoint { return c.ep }

// SetTracer attaches a tracer: blocking receives that actually wait record
// SpanRecvWait on the given track. A nil tracer (the default) keeps every
// receive on the uninstrumented path.
func (c *Comm) SetTracer(tr *trace.Tracer, track int) {
	c.tr = tr
	c.track = track
}

func (c *Comm) charge(instr int64, bytes int) {
	total := instr + int64(float64(bytes)*c.w.cost.PerByte)
	c.p.Advance(c.w.p.InstrTime(total))
}

// Send performs a blocking standard-mode send: the caller pays the call
// overhead, then the message enters the network.
func (c *Comm) Send(to, tag int, payload any, bytes int) {
	c.charge(c.w.cost.Send, bytes)
	c.ep.Send(to, tag, payload, bytes)
}

// SendClass is Send with an explicit traffic class for bandwidth
// attribution (accounting only — cost and timing are identical to Send).
func (c *Comm) SendClass(to, tag int, payload any, bytes int, class platform.MsgClass) {
	c.charge(c.w.cost.Send, bytes)
	c.ep.SendClass(to, tag, payload, bytes, class)
}

// Bsend performs a buffered send: like Send plus a buffer-copy overhead,
// but the DSMTX queue — not the caller — manages the buffer space.
func (c *Comm) Bsend(to, tag int, payload any, bytes int) {
	c.charge(c.w.cost.Bsend, bytes)
	c.ep.Send(to, tag, payload, bytes)
}

// Request is a handle for an outstanding immediate-mode operation.
type Request struct {
	c    *Comm
	done bool
}

// Isend initiates an immediate-mode send and returns a request to Wait on.
func (c *Comm) Isend(to, tag int, payload any, bytes int) *Request {
	c.charge(c.w.cost.Isend, bytes)
	c.ep.Send(to, tag, payload, bytes)
	return &Request{c: c}
}

// Wait completes an immediate-mode operation, paying its completion cost.
func (r *Request) Wait() {
	if r.done {
		return
	}
	r.done = true
	r.c.charge(r.c.w.cost.Wait, 0)
}

// Recv blocks until a message with the given source (or platform.AnySource)
// and tag arrives, then pays the receive overhead and returns it.
func (c *Comm) Recv(from, tag int) platform.Message {
	start := c.tr.Now()
	msg := c.ep.Recv(c.p, from, tag)
	if c.tr.Enabled() && c.tr.Now() > start+c.tr.SpanFloor() {
		// Only waits that spent time get a span; instant matches would
		// render as zero-width noise. The floor is zero on vtime (any
		// virtual wait is meaningful) and ~1µs on the host wall clock,
		// where scheduler jitter would otherwise flood the span buffers.
		c.tr.Span(trace.SpanRecvWait, c.track, start, 0, int64(tag), 0)
	}
	c.charge(c.w.cost.Recv, msg.Bytes)
	return msg
}

// TryRecv receives a pending matching message without blocking; the receive
// overhead is charged only on success.
func (c *Comm) TryRecv(from, tag int) (platform.Message, bool) {
	msg, ok := c.ep.TryRecv(from, tag)
	if ok {
		c.charge(c.w.cost.Recv, msg.Bytes)
	}
	return msg, ok
}

// TryRecvBox is TryRecv against a mailbox handle obtained from
// Endpoint().Mailbox — poll-heavy paths cache the handle to skip the
// per-call (source, tag) map lookup.
func (c *Comm) TryRecvBox(box platform.Mailbox) (platform.Message, bool) {
	msg, ok := box.TryRecv()
	if ok {
		c.charge(c.w.cost.Recv, msg.Bytes)
	}
	return msg, ok
}

// TryRecvBoxBatch drains every message pending on a mailbox handle into
// `into` and returns the extended slice, charging the per-receive overhead
// for each message taken. One call replaces a TryRecvBox poll loop: on the
// host backend the mailbox hands over its whole ring backlog at once.
func (c *Comm) TryRecvBoxBatch(box platform.Mailbox, into []platform.Message) []platform.Message {
	msgs := box.TryRecvBatch(into)
	for i := len(into); i < len(msgs); i++ {
		c.charge(c.w.cost.Recv, msgs[i].Bytes)
	}
	return msgs
}

// Barrier tags must not collide with application tags; reserve a high range.
const (
	tagBarrierArrive  = 1 << 30
	tagBarrierRelease = 1<<30 + 1
)

// Barrier synchronizes the given ranks with real messages: everyone reports
// to the lowest rank, which then broadcasts a release. Its cost therefore
// scales with latency and participant count — exactly the ERM component of
// the paper's recovery-overhead breakdown.
func (c *Comm) Barrier(ranks []int) {
	if len(ranks) == 0 {
		panic("mpi: empty barrier")
	}
	root := ranks[0]
	for _, r := range ranks[1:] {
		if r < root {
			root = r
		}
	}
	if c.Rank() == root {
		for i := 0; i < len(ranks)-1; i++ {
			c.Recv(platform.AnySource, tagBarrierArrive)
		}
		for _, r := range ranks {
			if r != root {
				c.Send(r, tagBarrierRelease, nil, 8)
			}
		}
		return
	}
	c.Send(root, tagBarrierArrive, nil, 8)
	c.Recv(root, tagBarrierRelease)
}

// RegisterBarrierMailboxes must be called by the barrier root before any
// participant can arrive, so any-source arrivals route correctly.
func (c *Comm) RegisterBarrierMailboxes() {
	c.ep.Mailbox(platform.AnySource, tagBarrierArrive)
}

// String aids debugging.
func (c *Comm) String() string { return fmt.Sprintf("mpi.Comm(rank=%d)", c.Rank()) }
