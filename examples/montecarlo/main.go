// Montecarlo: Spec-DOALL with control-flow speculation and real
// misspeculation recovery — the swaptions/blackscholes shape.
//
// Each iteration prices one instrument by Monte-Carlo simulation. The loop
// body has an error path (invalid parameters) that almost never executes;
// DSMTX speculates it away (Ctx.Misspec flags the rare violation), and the
// commit unit re-executes the offending iteration sequentially, taking the
// real error path, then restarts the pipeline. This example plants two
// invalid instruments to show recovery happening — and the output still
// matching the sequential run exactly.
package main

import (
	"fmt"
	"log"
	"math"

	"dsmtx"
)

const (
	instruments = 96
	trials      = 2000
)

type pricer struct {
	params dsmtx.Addr // rate, vol, maturity per instrument
	out    dsmtx.Addr
}

func (p *pricer) Setup(ctx *dsmtx.SeqCtx) {
	p.params = ctx.AllocWords(instruments * 3)
	p.out = ctx.AllocWords(instruments)
	for i := 0; i < instruments; i++ {
		a := p.params + dsmtx.Addr(i*3*8)
		ctx.Store(a, math.Float64bits(0.01+0.0005*float64(i)))
		vol := 0.10 + 0.002*float64(i)
		if i == 23 || i == 71 {
			vol = -1 // invalid: the speculated-not-taken error path
		}
		ctx.Store(a+8, math.Float64bits(vol))
		ctx.Store(a+16, math.Float64bits(1+float64(i%7)))
	}
}

// price is the real Monte-Carlo kernel.
func price(rate, vol, maturity float64, seed uint64) (float64, bool) {
	if vol <= 0 || maturity <= 0 {
		return 0, false // error path
	}
	var sum float64
	s := seed
	for t := 0; t < trials; t++ {
		x := 100.0
		for k := 0; k < 8; k++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			z := float64(int64(s))/float64(1<<63) - 0
			x *= math.Exp((rate-vol*vol/2)*maturity/8 + vol*math.Sqrt(maturity/8)*z*0.1)
		}
		if x > 100 {
			sum += (x - 100) * math.Exp(-rate*maturity)
		}
	}
	return sum / trials, true
}

func (p *pricer) run(load func(dsmtx.Addr) uint64, iter uint64) (float64, bool) {
	a := p.params + dsmtx.Addr(iter*3*8)
	return price(
		math.Float64frombits(load(a)),
		math.Float64frombits(load(a+8)),
		math.Float64frombits(load(a+16)),
		iter+1)
}

func (p *pricer) Stage(ctx *dsmtx.Ctx, _ int, iter uint64) bool {
	if iter >= instruments {
		return false
	}
	v, ok := p.run(ctx.Load, iter)
	if !ok {
		ctx.Misspec() // speculation violated: hand the iteration to recovery
	}
	ctx.Compute(trials * 180)
	ctx.WriteFloatCommit(p.out+dsmtx.Addr(iter*8), v)
	return true
}

// SeqIter is the recovery path: it executes the iteration with its real
// error handling (an invalid instrument prices to NaN and is recorded).
func (p *pricer) SeqIter(ctx *dsmtx.SeqCtx, iter uint64) {
	v, ok := p.run(ctx.Load, iter)
	if !ok {
		v = math.NaN()
		ctx.Compute(300)
	} else {
		ctx.Compute(trials * 180)
	}
	ctx.StoreFloat(p.out+dsmtx.Addr(iter*8), v)
}

func main() {
	plan := dsmtx.SpecDOALL()
	prog := &pricer{}
	seqTime, seqImg, err := dsmtx.RunSequential(dsmtx.DefaultConfig(3, plan), prog, instruments, nil)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := dsmtx.NewSystem(dsmtx.DefaultConfig(50, plan), prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Monte-Carlo pricing, %d instruments (2 invalid), Spec-DOALL on 50 cores\n\n", instruments)
	fmt.Printf("  sequential  %v\n", seqTime)
	fmt.Printf("  parallel    %v  (%.1fx)\n", res.Elapsed, seqTime.Seconds()/res.Elapsed.Seconds())
	fmt.Printf("  committed   %d MTXs, %d misspeculations recovered\n", res.Committed, res.Misspecs)
	fmt.Printf("  recovery    ERM %v  FLQ %v  SEQ %v  RFP %v\n\n", res.ERM, res.FLQ, res.SEQ, res.RFP)

	img := sys.CommitImage()
	mismatches := 0
	for i := uint64(0); i < instruments; i++ {
		a := img.Load(prog.out + dsmtx.Addr(i*8))
		b := seqImg.Load(prog.out + dsmtx.Addr(i*8))
		if a != b {
			mismatches++
		}
	}
	if mismatches > 0 {
		log.Fatalf("%d outputs differ from sequential", mismatches)
	}
	bad := math.Float64frombits(img.Load(prog.out + 23*8))
	fmt.Printf("  instrument 23 priced %v via the recovered error path; all %d outputs match sequential\n",
		bad, instruments)
}
