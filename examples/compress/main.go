// Compress: a parallel block compressor built on the DSMTX public API —
// the 164.gzip/256.bzip2 shape from the paper, with your own kernel.
//
// Pipeline (Spec-DSWP+[S,DOALL,S]):
//
//	stage 0 (S):     read the next fixed-size block from the input
//	stage 1 (DOALL): compress the block (run-length coding here)
//	stage 2 (S):     append the compressed block to the output, in order
//
// The variable-length output makes stage 2's cursor a loop-carried
// dependence — kept local to that stage's worker, so it costs nothing. The
// whole input streams through stage 0's NIC, which is what bounds this
// shape's scalability in the paper (and here: watch the speedup flatten).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"dsmtx"
)

const (
	blockSize = 16 << 10
	numBlocks = 120
)

// rle is the user-supplied kernel: byte-wise run-length coding.
func rle(src []byte) []byte {
	out := make([]byte, 0, len(src)/2)
	for i := 0; i < len(src); {
		j := i
		for j < len(src) && src[j] == src[i] && j-i < 255 {
			j++
		}
		out = append(out, src[i], byte(j-i))
		i = j
	}
	return out
}

func unrle(comp []byte) []byte {
	var out []byte
	for i := 0; i+1 < len(comp); i += 2 {
		out = append(out, bytes.Repeat(comp[i:i+1], int(comp[i+1]))...)
	}
	return out
}

// compressor is the DSMTX program.
type compressor struct {
	input, output   dsmtx.Addr
	lengths, outCur dsmtx.Addr
}

func (p *compressor) Setup(ctx *dsmtx.SeqCtx) {
	p.input = ctx.Alloc(numBlocks * blockSize)
	p.output = ctx.Alloc(2 * numBlocks * blockSize)
	p.lengths = ctx.AllocWords(numBlocks)
	p.outCur = ctx.AllocWords(1)
	// Synthesize runs-heavy input (sensor-log-like).
	data := make([]byte, numBlocks*blockSize)
	v, run := byte(0), 0
	for i := range data {
		if run == 0 {
			v = byte(i * 2654435761 >> 13)
			run = 3 + i%29
		}
		data[i] = v
		run--
	}
	ctx.Image().StoreBytes(p.input, data)
}

func (p *compressor) Stage(ctx *dsmtx.Ctx, stage int, iter uint64) bool {
	switch stage {
	case 0: // read block
		if iter >= numBlocks {
			return false
		}
		block := ctx.LoadBytes(p.input+dsmtx.Addr(iter*blockSize), blockSize)
		ctx.ProduceData(1, block, blockSize)
	case 1: // compress in parallel; charge ~6 instructions per input byte
		block := ctx.ConsumeData(0).([]byte)
		comp := rle(block)
		ctx.Compute(6 * blockSize)
		ctx.ProduceData(2, comp, len(comp))
	case 2: // append in order
		comp := ctx.ConsumeData(1).([]byte)
		cur := ctx.Load(p.outCur)
		ctx.WriteBytesCommit(p.output+dsmtx.Addr(cur), comp)
		ctx.WriteCommit(p.lengths+dsmtx.Addr(iter*8), uint64(len(comp)))
		ctx.WriteCommit(p.outCur, cur+uint64((len(comp)+7)&^7))
	}
	return true
}

func (p *compressor) SeqIter(ctx *dsmtx.SeqCtx, iter uint64) {
	block := ctx.LoadBytes(p.input+dsmtx.Addr(iter*blockSize), blockSize)
	comp := rle(block)
	ctx.Compute(6 * blockSize)
	cur := ctx.Load(p.outCur)
	ctx.StoreBytes(p.output+dsmtx.Addr(cur), comp)
	ctx.Store(p.lengths+dsmtx.Addr(iter*8), uint64(len(comp)))
	ctx.Store(p.outCur, cur+uint64((len(comp)+7)&^7))
}

func main() {
	traceOut := flag.String("trace", "", "write the 17-core run's Chrome trace-event JSON timeline here")
	flag.Parse()

	plan := dsmtx.SpecDSWP("S", "DOALL", "S")
	prog := &compressor{}
	seqTime, _, err := dsmtx.RunSequential(dsmtx.DefaultConfig(5, plan), prog, numBlocks, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel block compressor: %d x %d KiB blocks\n\n", numBlocks, blockSize>>10)
	for _, cores := range []int{5, 9, 17, 33} {
		sys, err := dsmtx.NewSystem(dsmtx.DefaultConfig(cores, plan), &compressor{}, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d cores: %10v  (%.1fx, %.0f MB/s wire traffic)\n",
			cores, res.Elapsed, seqTime.Seconds()/res.Elapsed.Seconds(), res.Bandwidth()/1e6)
	}

	// Verify the committed output decompresses to the input; this run also
	// carries the timeline tracer when -trace is set.
	var tr *dsmtx.Tracer
	cfg := dsmtx.DefaultConfig(17, plan)
	if *traceOut != "" {
		tr = dsmtx.NewTracer()
		cfg.Tracer = tr
	}
	sys, _ := dsmtx.NewSystem(cfg, prog, nil)
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s: load it in Perfetto (ui.perfetto.dev) to see each rank's timeline\n", *traceOut)
	}
	img := sys.CommitImage()
	var restored []byte
	off := uint64(0)
	for i := uint64(0); i < numBlocks; i++ {
		n := img.Load(prog.lengths + dsmtx.Addr(i*8))
		restored = append(restored, unrle(img.LoadBytes(prog.output+dsmtx.Addr(off), int(n)))...)
		off += (n + 7) &^ 7
	}
	original := img.LoadBytes(prog.input, numBlocks*blockSize)
	if !bytes.Equal(restored, original) {
		log.Fatal("round trip failed")
	}
	fmt.Printf("\ncompressed %d KiB -> %d KiB; round trip verified\n",
		len(original)>>10, int(img.Load(prog.outCur))>>10)
}
