// Quickstart: the paper's Figure 1 loop on DSMTX.
//
// The sequential program walks a linked list, computes on every node, and
// records the result:
//
//	A: while (node) {
//	B:   node = node->next;
//	C:   res = work(node);   // off the critical path
//	D:   write(res);
//	}
//
// The list walk (A;B) is the dependence recurrence; work (C) and output (D)
// are off the critical path. Spec-DSWP pipelines it as [S, DOALL, S]: one
// worker walks the list and streams node values out, a pool computes
// work(node) in parallel, and one worker writes results in order. The walk
// stays thread-local, so the pipeline tolerates inter-node latency.
package main

import (
	"fmt"
	"log"

	"dsmtx"
)

const (
	nodes     = 400
	workInstr = 60000 // virtual cost of work(node): ~20µs at 3 GHz
)

// listWalk is the parallelized loop. The list lives in unified virtual
// memory: node i holds {value, next-pointer}.
type listWalk struct {
	head dsmtx.Addr
	out  dsmtx.Addr
}

// work is the real computation: a small hash tower over the node value.
func work(v uint64) uint64 {
	for i := 0; i < 32; i++ {
		v = v*6364136223846793005 + 1442695040888963407
	}
	return v
}

func (p *listWalk) Setup(ctx *dsmtx.SeqCtx) {
	// Build the list in committed memory: a pointer allocated here is
	// valid, untranslated, on every node of the cluster (UVA).
	p.out = ctx.AllocWords(nodes + 1) // results + the walk cursor
	var prev dsmtx.Addr
	for i := nodes - 1; i >= 0; i-- {
		n := ctx.AllocWords(2)
		ctx.Store(n, uint64(i)*7+1) // value
		ctx.Store(n+8, uint64(prev))
		prev = n
	}
	p.head = prev
}

func (p *listWalk) Stage(ctx *dsmtx.Ctx, stage int, iter uint64) bool {
	switch stage {
	case 0: // A;B — the list walk, thread-local recurrence
		var node dsmtx.Addr
		if iter == 0 {
			node = p.head
		} else {
			node = dsmtx.Addr(ctx.Load(p.cursorAddr()))
		}
		if node == 0 {
			return false // end of list: the loop terminates
		}
		ctx.Produce(1, ctx.Load(node))                    // value for C
		ctx.WriteCommit(p.cursorAddr(), ctx.Load(node+8)) // advance the walk
	case 1: // C — work(node), replicated across the pool
		v := ctx.Consume(0)
		ctx.Compute(workInstr)
		ctx.Produce(2, work(v))
	case 2: // D — write(res), in iteration order
		ctx.WriteCommit(p.out+dsmtx.Addr(iter*8), ctx.Consume(1))
	}
	return true
}

// cursorAddr is where the walk keeps its position (loop-carried state,
// committed so recovery can resume it).
func (p *listWalk) cursorAddr() dsmtx.Addr { return p.out + dsmtx.Addr(nodes*8) }

func (p *listWalk) SeqIter(ctx *dsmtx.SeqCtx, iter uint64) {
	var node dsmtx.Addr
	if iter == 0 {
		node = p.head
	} else {
		node = dsmtx.Addr(ctx.Load(p.cursorAddr()))
	}
	ctx.Compute(workInstr)
	ctx.Store(p.out+dsmtx.Addr(iter*8), work(ctx.Load(node)))
	ctx.Store(p.cursorAddr(), ctx.Load(node+8))
}

func main() {
	prog := &listWalk{}
	plan := dsmtx.SpecDSWP("S", "DOALL", "S")

	// Sequential baseline.
	seqCfg := dsmtx.DefaultConfig(5, plan)
	seqTime, seqImg, err := dsmtx.RunSequential(seqCfg, prog, nodes, nil)
	if err != nil {
		log.Fatal(err)
	}
	seqOut := seqImg.Load(prog.out + (nodes-1)*8)

	fmt.Printf("Figure 1 list walk, %d nodes, work(node) ≈ 20µs\n\n", nodes)
	fmt.Printf("%8s %12s %10s\n", "cores", "elapsed", "speedup")
	fmt.Printf("%8s %12v %10s\n", "seq", seqTime, "1.0x")
	for _, cores := range []int{5, 9, 17, 33, 65} {
		sys, err := dsmtx.NewSystem(dsmtx.DefaultConfig(cores, plan), &listWalk{}, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12v %9.1fx\n", cores, res.Elapsed, seqTime.Seconds()/res.Elapsed.Seconds())
	}

	// Verify the parallel run committed the sequential answer.
	sys, _ := dsmtx.NewSystem(dsmtx.DefaultConfig(17, plan), prog, nil)
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	parOut := sys.CommitImage().Load(prog.out + (nodes-1)*8)
	if parOut != seqOut {
		log.Fatalf("output mismatch: %#x vs %#x", parOut, seqOut)
	}
	fmt.Printf("\noutput verified: out[%d] = %#x in both executions\n", nodes-1, parOut)
}
