package main

import "testing"

// TestLatencySweepStable smoke-tests the example: both parallelizations
// commit the same digest, the simulation is deterministic run-to-run, and
// the paper's claim holds at high latency (Spec-DSWP tolerates it, TLS
// degrades).
func TestLatencySweepStable(t *testing.T) {
	const cores = 34
	dswp, dswpDigest := run(false, 32, cores)
	tls, tlsDigest := run(true, 32, cores)
	if dswpDigest != tlsDigest {
		t.Fatalf("digest mismatch: Spec-DSWP %#x vs TLS %#x", dswpDigest, tlsDigest)
	}
	if dswp <= tls {
		t.Errorf("at 32µs latency Spec-DSWP (%.2fx) should beat TLS (%.2fx)", dswp, tls)
	}
	if dswp <= 1 {
		t.Errorf("Spec-DSWP speedup %.2fx, want > 1", dswp)
	}
	dswp2, digest2 := run(false, 32, cores)
	tls2, tlsDigest2 := run(true, 32, cores)
	if dswp2 != dswp || digest2 != dswpDigest || tls2 != tls || tlsDigest2 != tlsDigest {
		t.Errorf("rerun diverged: Spec-DSWP %.4fx/%#x vs %.4fx/%#x, TLS %.4fx/%#x vs %.4fx/%#x",
			dswp2, digest2, dswp, dswpDigest, tls2, tlsDigest2, tls, tlsDigest)
	}
}
