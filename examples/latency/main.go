// Latency: the paper's central claim, measured end to end — pipeline
// parallelism (Spec-DSWP) tolerates inter-node communication latency;
// DOACROSS-style TLS does not.
//
// One workload, two parallelizations, a sweep of inter-node latencies. The
// loop carries a running digest across iterations:
//
//	for i := range items { digest = combine(digest, process(items[i])) }
//
// Spec-DSWP pipelines it as [DOALL, S]: process() replicates, combine()
// runs in its own sequential stage; the only cross-core traffic is
// unidirectional, so added latency just deepens the queues. TLS runs whole
// iterations per worker with digest forwarded around the ring — cyclic
// traffic whose latency lands on the critical path, exactly Figure 1.
package main

import (
	"fmt"
	"log"
	"time"

	"dsmtx"
)

const (
	items     = 300
	workInstr = 45000 // process(): ~15µs at 3 GHz
)

type digestLoop struct {
	tls    bool
	input  dsmtx.Addr
	digest dsmtx.Addr
}

func combine(d, v uint64) uint64 { return (d ^ v) * 1099511628211 }

func process(v uint64) uint64 {
	for i := 0; i < 24; i++ {
		v = v*2862933555777941757 + 3037000493
	}
	return v
}

func (p *digestLoop) Setup(ctx *dsmtx.SeqCtx) {
	p.input = ctx.AllocWords(items)
	p.digest = ctx.AllocWords(1)
	for i := 0; i < items; i++ {
		ctx.Store(p.input+dsmtx.Addr(i*8), uint64(i)*31+7)
	}
	ctx.Store(p.digest, 14695981039346656037)
}

func (p *digestLoop) Stage(ctx *dsmtx.Ctx, stage int, iter uint64) bool {
	if p.tls {
		if iter >= items {
			return false
		}
		v := process(ctx.Load(p.input + dsmtx.Addr(iter*8)))
		ctx.Compute(workInstr)
		// The digest is a synchronized dependence: received from the
		// previous iteration, forwarded to the next (cyclic).
		var d uint64
		if ctx.EpochFirst() {
			d = ctx.Load(p.digest)
		} else {
			d = ctx.SyncRecv()
		}
		d = combine(d, v)
		ctx.WriteCommit(p.digest, d)
		ctx.SyncSend(d)
		return true
	}
	switch stage {
	case 0: // DOALL: process()
		if iter >= items {
			return false
		}
		v := process(ctx.Load(p.input + dsmtx.Addr(iter*8)))
		ctx.Compute(workInstr)
		ctx.Produce(1, v)
	case 1: // S: combine() — the recurrence stays local to this worker
		d := combine(ctx.Load(p.digest), ctx.Consume(0))
		ctx.WriteCommit(p.digest, d)
	}
	return true
}

func (p *digestLoop) SeqIter(ctx *dsmtx.SeqCtx, iter uint64) {
	v := process(ctx.Load(p.input + dsmtx.Addr(iter*8)))
	ctx.Compute(workInstr)
	ctx.Store(p.digest, combine(ctx.Load(p.digest), v))
}

func run(tls bool, latencyUS int, cores int) (speedup float64, digest uint64) {
	prog := &digestLoop{tls: tls}
	var plan dsmtx.Plan
	if tls {
		plan = dsmtx.TLSPlan()
	} else {
		plan = dsmtx.SpecDSWP("DOALL", "S")
	}
	cfg := dsmtx.DefaultConfig(cores, plan)
	cfg.Cluster.InterNodeLatency = dsmtx.Time(latencyUS) * 1000
	seqTime, _, err := dsmtx.RunSequential(cfg, prog, items, nil)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := dsmtx.NewSystem(cfg, prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	return seqTime.Seconds() / res.Elapsed.Seconds(), sys.CommitImage().Load(prog.digest)
}

func main() {
	start := time.Now()
	const cores = 34
	fmt.Printf("digest loop on %d cores: Spec-DSWP+[DOALL,S] vs TLS, latency sweep\n\n", cores)
	fmt.Printf("%16s %12s %10s\n", "latency (one-way)", "Spec-DSWP", "TLS")
	var dswpDigest, tlsDigest uint64
	for _, lat := range []int{2, 8, 32, 128} {
		d, dd := run(false, lat, cores)
		t, td := run(true, lat, cores)
		dswpDigest, tlsDigest = dd, td
		fmt.Printf("%14dµs %11.1fx %9.1fx\n", lat, d, t)
	}
	if dswpDigest != tlsDigest {
		log.Fatalf("digest mismatch: %#x vs %#x", dswpDigest, tlsDigest)
	}
	fmt.Printf("\nboth parallelizations committed digest %#x (verified)\n", dswpDigest)
	fmt.Printf("(host time: %v — the cluster is simulated, the execution is real)\n",
		time.Since(start).Round(time.Millisecond))
}
