// Command benchhost runs the host-side performance benchmarks
// (BenchmarkHost* in the repo root) and records the results as a labelled
// entry in BENCH_host.json, so the simulator's wall-clock trajectory is
// tracked across PRs.
//
// Usage (from the repo root, or via `make bench-host`):
//
//	go run ./tools/benchhost -label pr1 [-benchtime 3x] [-keep-label]
//
// An existing entry with the same label is replaced unless -keep-label is
// set, in which case the run aborts instead of overwriting history.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"time"
)

// Measurement is one benchmark's host-side result.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Entry is one labelled benchmark run (typically one per PR).
type Entry struct {
	Label      string                 `json:"label"`
	Date       string                 `json:"date"`
	GoVersion  string                 `json:"go_version,omitempty"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

// File is the whole BENCH_host.json document.
type File struct {
	Comment string  `json:"comment"`
	Entries []Entry `json:"entries"`
}

// benchLine matches `BenchmarkHostFoo-8  3  123456789 ns/op  456 B/op  7 allocs/op`.
var benchLine = regexp.MustCompile(`^(BenchmarkHost\S*?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchhost: ")
	var (
		label     = flag.String("label", "current", "entry label (e.g. pr1, pr1-baseline)")
		benchtime = flag.String("benchtime", "3x", "go test -benchtime value")
		out       = flag.String("out", "BENCH_host.json", "results file")
		keep      = flag.Bool("keep-label", false, "abort instead of replacing an existing entry with the same label")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", "BenchmarkHost",
		"-benchmem", "-benchtime", *benchtime, "-count", "1", ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		log.Fatalf("go test -bench: %v", err)
	}
	fmt.Print(string(raw))

	entry := Entry{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Benchmarks: map[string]Measurement{},
	}
	if v, err := exec.Command("go", "env", "GOVERSION").Output(); err == nil {
		entry.GoVersion = string(v[:len(v)-1])
	}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(raw), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		bytes, _ := strconv.ParseInt(m[3], 10, 64)
		allocs, _ := strconv.ParseInt(m[4], 10, 64)
		entry.Benchmarks[m[1]] = Measurement{NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
	}
	if len(entry.Benchmarks) == 0 {
		log.Fatal("no BenchmarkHost results parsed")
	}

	f := File{Comment: "Host wall-clock per figure-harness run, one labelled entry per PR; written by tools/benchhost (make bench-host)."}
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &f); err != nil {
			log.Fatalf("parse %s: %v", *out, err)
		}
	}
	kept := f.Entries[:0]
	for _, e := range f.Entries {
		if e.Label == *label {
			if *keep {
				log.Fatalf("entry %q already exists in %s", *label, *out)
			}
			continue
		}
		kept = append(kept, e)
	}
	f.Entries = append(kept, entry)

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("recorded %d benchmarks under label %q in %s", len(entry.Benchmarks), *label, *out)
}
