// Command benchhost runs the host-side performance benchmarks
// (BenchmarkHost* in the repo root) and records the results as a labelled
// entry in BENCH_host.json, so the simulator's wall-clock trajectory is
// tracked across PRs.
//
// Usage (from the repo root, or via `make bench-host`):
//
//	go run ./tools/benchhost -label pr1 [-benchtime 3x] [-keep-label]
//
// An existing entry with the same label is replaced unless -keep-label is
// set, in which case the run aborts instead of overwriting history.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"time"

	"dsmtx/internal/core"
	"dsmtx/internal/netrun"
	"dsmtx/internal/workloads"
)

// Measurement is one benchmark's host-side result.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// SweepRun is one full-figure dsmtxbench execution through the host-parallel
// experiment scheduler, parsed from its stderr summary line.
type SweepRun struct {
	Workers  int     `json:"workers"`
	Points   int     `json:"points"`
	Computed int     `json:"computed"`
	Cached   int     `json:"cached"`
	Seconds  float64 `json:"seconds"`
}

// Sweep tracks the scheduler's wall clock: a cold run that simulates every
// point of `dsmtxbench -all -quick`, then a warm rerun over the same cache
// directory that must resolve 100% of them from disk.
type Sweep struct {
	Cold SweepRun `json:"cold"`
	Warm SweepRun `json:"warm"`
}

// HostSpeedupRow is one wall-clock comparison of the host backend against
// the sequential reference: the same benchmark computation, run once
// single-threaded and once through the live-goroutine DSMTX protocol.
// Speedup = seq_ms / host_ms; see the README note on reading these rows.
type HostSpeedupRow struct {
	Bench   string  `json:"bench"`
	Ranks   int     `json:"ranks"`
	Input   string  `json:"input,omitempty"` // "" = default scale; "big" = -speedup-input big
	HostMs  float64 `json:"host_ms"`
	SeqMs   float64 `json:"seq_ms"`
	Speedup float64 `json:"speedup"`
}

// NetSpeedupRow is one wall-clock comparison of the distributed net
// backend (ranks split across daemon OS processes on loopback TCP)
// against the in-process host backend and the sequential reference, on
// the same benchmark computation. net_over_host > 1 is the price of
// crossing process boundaries — wire encode/decode, TCP, page traffic —
// on a problem sized for CI, not a scaling claim.
type NetSpeedupRow struct {
	Bench       string  `json:"bench"`
	Ranks       int     `json:"ranks"`
	Daemons     int     `json:"daemons"`
	NetMs       float64 `json:"net_ms"`
	HostMs      float64 `json:"host_ms"`
	SeqMs       float64 `json:"seq_ms"`
	Speedup     float64 `json:"speedup"`       // seq_ms / net_ms
	NetOverHost float64 `json:"net_over_host"` // net_ms / host_ms
}

// ShardRow is one commit-shard sweep cell: the same host-backend run with
// the page space partitioned across CommitShards commit units.
type ShardRow struct {
	Bench        string  `json:"bench"`
	Ranks        int     `json:"ranks"`
	CommitShards int     `json:"commit_shards"`
	HostMs       float64 `json:"host_ms"`
	Speedup      float64 `json:"speedup"` // 1-shard host_ms / this host_ms
}

// Entry is one labelled benchmark run (typically one per PR).
type Entry struct {
	Label       string                 `json:"label"`
	Date        string                 `json:"date"`
	GoVersion   string                 `json:"go_version,omitempty"`
	Benchmarks  map[string]Measurement `json:"benchmarks"`
	Sweep       *Sweep                 `json:"sweep,omitempty"`
	HostSpeedup []HostSpeedupRow       `json:"host_speedup,omitempty"`
	NetSpeedup  []NetSpeedupRow        `json:"net_speedup,omitempty"`
	ShardSweep  []ShardRow             `json:"shard_sweep,omitempty"`
}

// File is the whole BENCH_host.json document.
type File struct {
	Comment string  `json:"comment"`
	Entries []Entry `json:"entries"`
}

// benchLine matches `BenchmarkHostFoo-8  3  123456789 ns/op  456 B/op  7 allocs/op`.
var benchLine = regexp.MustCompile(`^(BenchmarkHost\S*?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

// sweepLine matches dsmtxbench's stderr summary,
// `dsmtxbench: sweep workers=4 points=243 computed=243 cached=0 elapsed=39.9s`.
var sweepLine = regexp.MustCompile(`sweep workers=(\d+) points=(\d+) computed=(\d+) cached=(\d+) elapsed=(\S+)`)

// runSweep executes one `dsmtxbench -all -quick` sweep against the given
// cache directory and parses the scheduler summary from stderr. Figures on
// stdout are discarded: only the wall clock and cache behaviour matter here.
func runSweep(bin, cacheDir string, parallel int) (SweepRun, error) {
	cmd := exec.Command(bin, "-all", "-quick",
		"-parallel", strconv.Itoa(parallel), "-cache", cacheDir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return SweepRun{}, fmt.Errorf("%s -all -quick: %v\n%s", bin, err, stderr.String())
	}
	m := sweepLine.FindStringSubmatch(stderr.String())
	if m == nil {
		return SweepRun{}, fmt.Errorf("no sweep summary on stderr:\n%s", stderr.String())
	}
	var r SweepRun
	r.Workers, _ = strconv.Atoi(m[1])
	r.Points, _ = strconv.Atoi(m[2])
	r.Computed, _ = strconv.Atoi(m[3])
	r.Cached, _ = strconv.Atoi(m[4])
	d, err := time.ParseDuration(m[5])
	if err != nil {
		return SweepRun{}, fmt.Errorf("bad sweep elapsed %q: %v", m[5], err)
	}
	r.Seconds = d.Seconds()
	return r, nil
}

// measureSweep builds dsmtxbench and runs the cold/warm sweep pair in a
// throwaway cache directory.
func measureSweep(parallel int) (*Sweep, error) {
	dir, err := os.MkdirTemp("", "benchhost-sweep")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin := dir + "/dsmtxbench"
	build := exec.Command("go", "build", "-o", bin, "./cmd/dsmtxbench")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return nil, fmt.Errorf("build dsmtxbench: %v", err)
	}
	var s Sweep
	if s.Cold, err = runSweep(bin, dir+"/cache", parallel); err != nil {
		return nil, err
	}
	if s.Warm, err = runSweep(bin, dir+"/cache", parallel); err != nil {
		return nil, err
	}
	if s.Warm.Computed != 0 {
		return nil, fmt.Errorf("warm sweep recomputed %d points; cache broken", s.Warm.Computed)
	}
	return &s, nil
}

// speedupInput labels one problem size the speedup rows run with.
type speedupInput struct {
	label string // row's Input field; "" = default scale
	in    workloads.Input
}

// speedupInputs resolves the -speedup-input mode. The default input keeps
// per-PR rows comparable with history; "big" scales the problem up so
// 32/96-rank runs have enough iterations per rank for the protocol's fixed
// costs to amortize — the row that actually measures scaling.
func speedupInputs(mode string) ([]speedupInput, error) {
	def := speedupInput{"", workloads.DefaultInput()}
	big := speedupInput{"big", workloads.Input{Scale: 8, Seed: 42}}
	switch mode {
	case "default":
		return []speedupInput{def}, nil
	case "big":
		return []speedupInput{big}, nil
	case "both":
		return []speedupInput{def, big}, nil
	}
	return nil, fmt.Errorf("unknown -speedup-input %q (have default, big, both)", mode)
}

// measureHostSpeedup runs gzip and crc32 once sequentially and once on the
// host backend at each rank count, in-process, and reports best-of-reps
// wall clocks. These are end-to-end runtime measurements (protocol,
// mailboxes, page service), not a claim about application-level scaling:
// the sequential reference carries the simulator's cost-accounting and the
// host run carries full protocol overhead.
func measureHostSpeedup(reps int, inputs []speedupInput) ([]HostSpeedupRow, error) {
	var rows []HostSpeedupRow
	for _, input := range inputs {
		r, err := measureHostSpeedupInput(reps, input.label, input.in)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

func measureHostSpeedupInput(reps int, label string, in workloads.Input) ([]HostSpeedupRow, error) {
	var rows []HostSpeedupRow
	for _, name := range []string{"164.gzip", "crc32"} {
		b, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		seq := time.Duration(-1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if _, _, err := workloads.RunSequentialRef(b, in); err != nil {
				return nil, fmt.Errorf("%s sequential: %v", name, err)
			}
			if d := time.Since(t0); seq < 0 || d < seq {
				seq = d
			}
		}
		for _, ranks := range []int{32, 96} {
			host := time.Duration(-1)
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				res, err := workloads.RunParallel(b, in, workloads.DSMTX, ranks, func(cfg *core.Config) {
					cfg.Backend = core.BackendHost
				})
				if err != nil {
					return nil, fmt.Errorf("%s host %d ranks: %v", name, ranks, err)
				}
				if res.Committed == 0 {
					return nil, fmt.Errorf("%s host %d ranks: no commits", name, ranks)
				}
				if d := time.Since(t0); host < 0 || d < host {
					host = d
				}
			}
			rows = append(rows, HostSpeedupRow{
				Bench:   name,
				Ranks:   ranks,
				Input:   label,
				HostMs:  float64(host.Microseconds()) / 1000,
				SeqMs:   float64(seq.Microseconds()) / 1000,
				Speedup: seq.Seconds() / host.Seconds(),
			})
			inputNote := ""
			if label != "" {
				inputNote = " input=" + label
			}
			log.Printf("speedup: %s%s ranks=%d host=%.1fms seq=%.1fms speedup=%.2fx",
				name, inputNote, ranks, float64(host.Microseconds())/1000, float64(seq.Microseconds())/1000,
				seq.Seconds()/host.Seconds())
		}
	}
	return rows, nil
}

// measureNetSpeedup runs gzip and crc32 at 32 ranks three ways — once
// sequentially, once on the in-process host backend, and once distributed
// across two loopback daemon processes (the benchhost binary re-execs
// itself as the daemons) — and reports best-of-reps wall clocks. A fresh
// daemon fleet is launched per rep: each daemon serves one job, and the
// launch cost is excluded from the timed window just as goroutine spawn is
// on host.
func measureNetSpeedup(reps int) ([]NetSpeedupRow, error) {
	in := workloads.Input{Scale: 8, Seed: 42}
	const ranks = 32
	const daemons = 2
	var rows []NetSpeedupRow
	for _, name := range []string{"164.gzip", "crc32"} {
		b, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		seq := time.Duration(-1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if _, _, err := workloads.RunSequentialRef(b, in); err != nil {
				return nil, fmt.Errorf("%s sequential: %v", name, err)
			}
			if d := time.Since(t0); seq < 0 || d < seq {
				seq = d
			}
		}
		host := time.Duration(-1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			res, err := workloads.RunParallel(b, in, workloads.DSMTX, ranks, func(cfg *core.Config) {
				cfg.Backend = core.BackendHost
			})
			if err != nil {
				return nil, fmt.Errorf("%s host %d ranks: %v", name, ranks, err)
			}
			if res.Committed == 0 {
				return nil, fmt.Errorf("%s host %d ranks: no commits", name, ranks)
			}
			if d := time.Since(t0); host < 0 || d < host {
				host = d
			}
		}
		netT := time.Duration(-1)
		for r := 0; r < reps; r++ {
			cl, err := netrun.LaunchLocal(daemons, os.Args[0])
			if err != nil {
				return nil, fmt.Errorf("%s net launch: %v", name, err)
			}
			t0 := time.Now()
			res, err := cl.Run(netrun.JobSpec{
				Bench:       name,
				Scale:       in.Scale,
				MisspecRate: in.MisspecRate,
				Seed:        in.Seed,
				Cores:       ranks,
			})
			d := time.Since(t0)
			cl.Close()
			if err != nil {
				return nil, fmt.Errorf("%s net %d ranks: %v", name, ranks, err)
			}
			if res.Committed == 0 {
				return nil, fmt.Errorf("%s net %d ranks: no commits", name, ranks)
			}
			if netT < 0 || d < netT {
				netT = d
			}
		}
		rows = append(rows, NetSpeedupRow{
			Bench:       name,
			Ranks:       ranks,
			Daemons:     daemons,
			NetMs:       float64(netT.Microseconds()) / 1000,
			HostMs:      float64(host.Microseconds()) / 1000,
			SeqMs:       float64(seq.Microseconds()) / 1000,
			Speedup:     seq.Seconds() / netT.Seconds(),
			NetOverHost: netT.Seconds() / host.Seconds(),
		})
		log.Printf("net speedup: %s ranks=%d daemons=%d net=%.1fms host=%.1fms seq=%.1fms (%.2fx vs seq, %.2fx host cost)",
			name, ranks, daemons, float64(netT.Microseconds())/1000, float64(host.Microseconds())/1000,
			float64(seq.Microseconds())/1000, seq.Seconds()/netT.Seconds(), netT.Seconds()/host.Seconds())
	}
	return rows, nil
}

// measureShardSweep times the host backend with CommitShards in {1, 2, 4}
// on the big input, best-of-reps. It tracks what sharding the commit
// pipeline costs (or buys) in live-goroutine wall clock, where the commit
// units really do run on distinct OS threads.
func measureShardSweep(reps int) ([]ShardRow, error) {
	in := workloads.Input{Scale: 8, Seed: 42}
	var rows []ShardRow
	for _, name := range []string{"164.gzip", "crc32"} {
		b, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		const ranks = 96
		var base time.Duration
		for _, shards := range []int{1, 2, 4} {
			host := time.Duration(-1)
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				res, err := workloads.RunParallel(b, in, workloads.DSMTX, ranks, func(cfg *core.Config) {
					cfg.Backend = core.BackendHost
					cfg.CommitShards = shards
				})
				if err != nil {
					return nil, fmt.Errorf("%s host shards=%d: %v", name, shards, err)
				}
				if res.Committed == 0 {
					return nil, fmt.Errorf("%s host shards=%d: no commits", name, shards)
				}
				if d := time.Since(t0); host < 0 || d < host {
					host = d
				}
			}
			if shards == 1 {
				base = host
			}
			rows = append(rows, ShardRow{
				Bench:        name,
				Ranks:        ranks,
				CommitShards: shards,
				HostMs:       float64(host.Microseconds()) / 1000,
				Speedup:      base.Seconds() / host.Seconds(),
			})
			log.Printf("shard sweep: %s ranks=%d shards=%d host=%.1fms (%.2fx vs 1 shard)",
				name, ranks, shards, float64(host.Microseconds())/1000, base.Seconds()/host.Seconds())
		}
	}
	return rows, nil
}

func main() {
	// The net speedup rows re-exec this binary as the daemon fleet.
	if os.Getenv(netrun.DaemonEnv) == "1" {
		os.Exit(netrun.DaemonMain())
	}
	log.SetFlags(0)
	log.SetPrefix("benchhost: ")
	var (
		label     = flag.String("label", "current", "entry label (e.g. pr1, pr1-baseline)")
		benchtime = flag.String("benchtime", "3x", "go test -benchtime value")
		out       = flag.String("out", "BENCH_host.json", "results file")
		keep      = flag.Bool("keep-label", false, "abort instead of replacing an existing entry with the same label")
		parallel  = flag.Int("sweep-parallel", runtime.GOMAXPROCS(0), "worker count for the dsmtxbench sweep (0 disables the sweep)")
		speedReps = flag.Int("speedup-reps", 3, "repetitions (best-of) for the host-vs-sequential speedup rows (0 disables them)")
		speedIn   = flag.String("speedup-input", "big", "problem size for the speedup rows: default, big (8x scale), or both")
	)
	flag.Parse()
	inputs, err := speedupInputs(*speedIn)
	if err != nil {
		log.Fatal(err)
	}

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", "BenchmarkHost",
		"-benchmem", "-benchtime", *benchtime, "-count", "1", ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		log.Fatalf("go test -bench: %v", err)
	}
	fmt.Print(string(raw))

	entry := Entry{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Benchmarks: map[string]Measurement{},
	}
	if v, err := exec.Command("go", "env", "GOVERSION").Output(); err == nil {
		entry.GoVersion = string(v[:len(v)-1])
	}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(raw), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		bytes, _ := strconv.ParseInt(m[3], 10, 64)
		allocs, _ := strconv.ParseInt(m[4], 10, 64)
		entry.Benchmarks[m[1]] = Measurement{NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
	}
	if len(entry.Benchmarks) == 0 {
		log.Fatal("no BenchmarkHost results parsed")
	}

	if *speedReps > 0 {
		rows, err := measureHostSpeedup(*speedReps, inputs)
		if err != nil {
			log.Fatalf("host speedup: %v", err)
		}
		entry.HostSpeedup = rows
		netRows, err := measureNetSpeedup(*speedReps)
		if err != nil {
			log.Fatalf("net speedup: %v", err)
		}
		entry.NetSpeedup = netRows
		shardRows, err := measureShardSweep(*speedReps)
		if err != nil {
			log.Fatalf("shard sweep: %v", err)
		}
		entry.ShardSweep = shardRows
	}

	if *parallel > 0 {
		sweep, err := measureSweep(*parallel)
		if err != nil {
			log.Fatalf("sweep: %v", err)
		}
		entry.Sweep = sweep
		log.Printf("sweep: %d points, cold %.1fs (workers=%d), warm %.2fs (%d cached)",
			sweep.Cold.Points, sweep.Cold.Seconds, sweep.Cold.Workers,
			sweep.Warm.Seconds, sweep.Warm.Cached)
	}

	f := File{Comment: "Host wall-clock per figure-harness run, one labelled entry per PR; written by tools/benchhost (make bench-host)."}
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &f); err != nil {
			log.Fatalf("parse %s: %v", *out, err)
		}
	}
	kept := f.Entries[:0]
	for _, e := range f.Entries {
		if e.Label == *label {
			if *keep {
				log.Fatalf("entry %q already exists in %s", *label, *out)
			}
			continue
		}
		kept = append(kept, e)
	}
	f.Entries = append(kept, entry)

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("recorded %d benchmarks under label %q in %s", len(entry.Benchmarks), *label, *out)
}
