package main

import (
	"bytes"
	"strings"
	"testing"

	"dsmtx/internal/core"
	"dsmtx/internal/faults"
	"dsmtx/internal/sim"
	"dsmtx/internal/trace"
	"dsmtx/internal/workloads"
)

// realTrace produces a Chrome trace from a faulted run, so the export
// exercises the resilience vocabulary (crash spans, re-dispatch, drops,
// retransmits) alongside the ordinary execution spans.
func realTrace(t *testing.T) []byte {
	t.Helper()
	b, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	plan := faults.Plan{
		Seed:     3,
		DropRate: 0.01,
		Crashes:  []faults.Crash{{Rank: 1, At: 2 * sim.Millisecond, Downtime: 100 * sim.Microsecond}},
	}
	if _, err := workloads.RunParallel(b, workloads.DefaultInput(), workloads.DSMTX, 16,
		func(cfg *core.Config) {
			cfg.Tracer = tr
			cfg.Faults = &plan
		}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckAcceptsRealFaultedTrace(t *testing.T) {
	data := realTrace(t)
	summary, err := check(data)
	if err != nil {
		t.Fatalf("check rejected a tracer-produced file: %v", err)
	}
	if !strings.Contains(summary, "spans") {
		t.Fatalf("summary: %q", summary)
	}
	for _, name := range []string{trace.SpanCrash.String(), trace.SpanRedispatch.String(),
		trace.InstRetransmit.String()} {
		if !bytes.Contains(data, []byte(`"`+name+`"`)) {
			t.Errorf("faulted trace missing %q events", name)
		}
	}
}

func TestCheckRejectsMalformedTraces(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"bad json", `{`, "not valid JSON"},
		{"empty", `{"traceEvents":[]}`, "no traceEvents"},
		{"unknown span", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"worker0"}},
			{"name":"bogus.span","ph":"X","pid":1,"tid":0,"ts":0,"dur":1}]}`,
			"not in the tracer vocabulary"},
		{"unknown metadata", `{"traceEvents":[
			{"name":"bogus_meta","ph":"M","pid":1,"tid":0,"args":{}}]}`,
			"unknown metadata record"},
		{"unnamed thread", `{"traceEvents":[
			{"name":"fault.crash","ph":"X","pid":1,"tid":7,"ts":0,"dur":1}]}`,
			"no thread_name metadata"},
		{"negative dur", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"worker0"}},
			{"name":"fault.crash","ph":"X","pid":1,"tid":0,"ts":0,"dur":-5}]}`,
			"negative ts/dur"},
	}
	for _, tc := range cases {
		if _, err := check([]byte(tc.data)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}
