package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"dsmtx/internal/core"
	"dsmtx/internal/faults"
	"dsmtx/internal/sim"
	"dsmtx/internal/trace"
	"dsmtx/internal/workloads"
)

// realTrace produces a Chrome trace from a faulted run, so the export
// exercises the resilience vocabulary (crash spans, re-dispatch, drops,
// retransmits) alongside the ordinary execution spans.
func realTrace(t *testing.T) []byte {
	t.Helper()
	b, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	plan := faults.Plan{
		Seed:     3,
		DropRate: 0.01,
		Crashes:  []faults.Crash{{Rank: 1, At: 2 * sim.Millisecond, Downtime: 100 * sim.Microsecond}},
	}
	if _, err := workloads.RunParallel(b, workloads.DefaultInput(), workloads.DSMTX, 16,
		func(cfg *core.Config) {
			cfg.Tracer = tr
			cfg.Faults = &plan
		}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckAcceptsRealFaultedTrace(t *testing.T) {
	data := realTrace(t)
	summary, err := check(data)
	if err != nil {
		t.Fatalf("check rejected a tracer-produced file: %v", err)
	}
	if !strings.Contains(summary, "spans") {
		t.Fatalf("summary: %q", summary)
	}
	for _, name := range []string{trace.SpanCrash.String(), trace.SpanRedispatch.String(),
		trace.InstRetransmit.String()} {
		if !bytes.Contains(data, []byte(`"`+name+`"`)) {
			t.Errorf("faulted trace missing %q events", name)
		}
	}
}

// hostTrace produces a wall-clock Chrome trace from a live host-backend run.
func hostTrace(t *testing.T) []byte {
	t.Helper()
	b, err := workloads.ByName("crc32")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	if _, err := workloads.RunParallel(b, workloads.DefaultInput(), workloads.DSMTX, 8,
		func(cfg *core.Config) {
			cfg.Tracer = tr
			cfg.Backend = core.BackendHost
		}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckAcceptsLiveHostTrace(t *testing.T) {
	summary, err := check(hostTrace(t))
	if err != nil {
		t.Fatalf("check rejected a live host trace: %v", err)
	}
	if !strings.Contains(summary, "wall clock") {
		t.Fatalf("summary does not identify the wall clock: %q", summary)
	}
}

// TestCheckAcceptsHostFixture validates the captured host trace committed as
// testdata, pinning the wall-clock file format (clock marker, per-track
// monotone timestamps, host vocabulary) independently of the live runtime.
func TestCheckAcceptsHostFixture(t *testing.T) {
	data, err := os.ReadFile("testdata/host_trace.json")
	if err != nil {
		t.Fatal(err)
	}
	summary, err := check(data)
	if err != nil {
		t.Fatalf("check rejected the host fixture: %v", err)
	}
	if !strings.Contains(summary, "wall clock") {
		t.Fatalf("summary does not identify the wall clock: %q", summary)
	}
	if !bytes.Contains(data, []byte(`"`+trace.SpanPageServe.String()+`"`)) {
		t.Errorf("host fixture missing %q events", trace.SpanPageServe.String())
	}
}

// TestCheckWallClockRules covers the wall-clock extensions as a table: the
// host delivery vocabulary is accepted, per-track timestamp regressions are
// rejected only under "clock":"wall", and unknown clocks fail.
func TestCheckWallClockRules(t *testing.T) {
	const meta = `{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"worker0"}}`
	cases := []struct {
		name string
		data string
		want string // error substring; empty = must pass
	}{
		{"host vocabulary accepted", `{"traceEvents":[` + meta + `,
			{"name":"recv.park","ph":"X","pid":0,"tid":0,"ts":0,"dur":2},
			{"name":"pagesrv.shard","ph":"X","pid":0,"tid":0,"ts":3,"dur":1},
			{"name":"ring.spill","ph":"i","s":"t","pid":0,"tid":0,"ts":5}],
			"clock":"wall"}`, ""},
		{"wall regression rejected", `{"traceEvents":[` + meta + `,
			{"name":"recv.park","ph":"X","pid":0,"tid":0,"ts":9,"dur":1},
			{"name":"recv.park","ph":"X","pid":0,"tid":0,"ts":4,"dur":1}],
			"clock":"wall"}`, "regresses"},
		{"vtime tolerates regression", `{"traceEvents":[` + meta + `,
			{"name":"subTX","ph":"X","pid":0,"tid":0,"ts":9,"dur":1},
			{"name":"subTX","ph":"X","pid":0,"tid":0,"ts":4,"dur":1}]}`, ""},
		{"instant regression rejected", `{"traceEvents":[` + meta + `,
			{"name":"recv.park","ph":"X","pid":0,"tid":0,"ts":9,"dur":1},
			{"name":"ring.spill","ph":"i","s":"t","pid":0,"tid":0,"ts":4}],
			"clock":"wall"}`, "regresses"},
		{"independent tracks may interleave", `{"traceEvents":[` + meta + `,
			{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"worker1"}},
			{"name":"recv.park","ph":"X","pid":0,"tid":0,"ts":9,"dur":1},
			{"name":"recv.park","ph":"X","pid":0,"tid":1,"ts":4,"dur":1}],
			"clock":"wall"}`, ""},
		{"unknown clock rejected", `{"traceEvents":[` + meta + `,
			{"name":"subTX","ph":"X","pid":0,"tid":0,"ts":0,"dur":1}],
			"clock":"tai"}`, "unknown clock"},
	}
	for _, tc := range cases {
		_, err := check([]byte(tc.data))
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// shardTrace produces a trace from a sharded-commit run, so the export
// exercises the cross-shard vocabulary (per-shard commit spans, vote
// instants, vote waits) on either backend. gzip's bulk output regularly
// straddles 64-page owner blocks, so multi-shard MTXs — and hence votes —
// are guaranteed.
func shardTrace(t *testing.T, backend core.Backend) []byte {
	t.Helper()
	b, err := workloads.ByName("164.gzip")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	if _, err := workloads.RunParallel(b, workloads.DefaultInput(), workloads.DSMTX, 12,
		func(cfg *core.Config) {
			cfg.Tracer = tr
			cfg.Backend = backend
			cfg.CommitShards = 4
		}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckAcceptsShardedTraces validates real sharded-commit traces on both
// backends: the cross-shard vocabulary passes the name gate (with wall-clock
// monotonicity on the host), and the vote instants actually appear.
func TestCheckAcceptsShardedTraces(t *testing.T) {
	for _, bk := range []struct {
		name    string
		backend core.Backend
	}{{"vtime", core.BackendVTime}, {"host", core.BackendHost}} {
		data := shardTrace(t, bk.backend)
		summary, err := check(data)
		if err != nil {
			t.Fatalf("%s: check rejected a sharded trace: %v", bk.name, err)
		}
		if !strings.Contains(summary, "spans") {
			t.Fatalf("%s: summary: %q", bk.name, summary)
		}
		for _, name := range []string{trace.SpanShardCommit.String(), trace.InstShardVote.String()} {
			if !bytes.Contains(data, []byte(`"`+name+`"`)) {
				t.Errorf("%s: sharded trace missing %q events", bk.name, name)
			}
		}
	}
}

// TestCheckCommitShardVocabulary covers the cross-shard names as a table:
// the published spellings pass (including under wall-clock monotonicity on
// one commit-shard track), and near-miss spellings fail the name gate.
func TestCheckCommitShardVocabulary(t *testing.T) {
	const meta = `{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"commit.shard1"}}`
	cases := []struct {
		name string
		data string
		want string // error substring; empty = must pass
	}{
		{"shard vocabulary accepted", `{"traceEvents":[` + meta + `,
			{"name":"commit.shard","ph":"X","pid":0,"tid":0,"ts":0,"dur":2},
			{"name":"commit.shard.vote","ph":"i","s":"t","pid":0,"tid":0,"ts":3},
			{"name":"commit.shard.votewait","ph":"X","pid":0,"tid":0,"ts":4,"dur":1}],
			"clock":"wall"}`, ""},
		{"shard wall regression rejected", `{"traceEvents":[` + meta + `,
			{"name":"commit.shard","ph":"X","pid":0,"tid":0,"ts":9,"dur":1},
			{"name":"commit.shard.vote","ph":"i","s":"t","pid":0,"tid":0,"ts":4}],
			"clock":"wall"}`, "regresses"},
		{"misspelled shard span rejected", `{"traceEvents":[` + meta + `,
			{"name":"commit.shards","ph":"X","pid":0,"tid":0,"ts":0,"dur":1}]}`,
			"not in the tracer vocabulary"},
		{"misspelled vote instant rejected", `{"traceEvents":[` + meta + `,
			{"name":"commit.shard","ph":"X","pid":0,"tid":0,"ts":0,"dur":1},
			{"name":"commit.shard.votes","ph":"i","s":"t","pid":0,"tid":0,"ts":2}]}`,
			"not in the tracer vocabulary"},
	}
	for _, tc := range cases {
		_, err := check([]byte(tc.data))
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckRejectsMalformedTraces(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"bad json", `{`, "not valid JSON"},
		{"empty", `{"traceEvents":[]}`, "no traceEvents"},
		{"unknown span", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"worker0"}},
			{"name":"bogus.span","ph":"X","pid":1,"tid":0,"ts":0,"dur":1}]}`,
			"not in the tracer vocabulary"},
		{"unknown metadata", `{"traceEvents":[
			{"name":"bogus_meta","ph":"M","pid":1,"tid":0,"args":{}}]}`,
			"unknown metadata record"},
		{"unnamed thread", `{"traceEvents":[
			{"name":"fault.crash","ph":"X","pid":1,"tid":7,"ts":0,"dur":1}]}`,
			"no thread_name metadata"},
		{"negative dur", `{"traceEvents":[
			{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"worker0"}},
			{"name":"fault.crash","ph":"X","pid":1,"tid":0,"ts":0,"dur":-5}]}`,
			"negative ts/dur"},
	}
	for _, tc := range cases {
		if _, err := check([]byte(tc.data)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}
