// Command tracecheck validates a Chrome trace-event JSON file produced by
// the dsmtx virtual-time tracer: well-formed JSON, the trace-event fields
// Perfetto requires, monotone non-negative durations, and per-rank metadata
// covering every thread that has events. CI runs it over the trace-demo
// output so a malformed export fails the build rather than a Perfetto load.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
)

type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Ts   json.RawMessage `json:"ts"`
	Dur  json.RawMessage `json:"dur"`
	Args map[string]any  `json:"args"`
}

type traceFile struct {
	TraceEvents []event `json:"traceEvents"`
}

// usec parses a trace timestamp (a JSON number in microseconds, emitted
// with nanosecond precision as %d.%03d).
func usec(raw json.RawMessage) (float64, error) {
	return strconv.ParseFloat(string(raw), 64)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	if len(os.Args) != 2 {
		log.Fatal("usage: tracecheck trace.json")
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		log.Fatalf("%s: not valid JSON: %v", os.Args[1], err)
	}
	if len(tf.TraceEvents) == 0 {
		log.Fatalf("%s: no traceEvents", os.Args[1])
	}

	named := make(map[int]string) // tid -> thread_name from metadata
	eventTids := make(map[int]int)
	spans, instants := 0, 0
	kinds := make(map[string]int)
	for i, e := range tf.TraceEvents {
		if e.Pid == nil || e.Tid == nil {
			log.Fatalf("event %d (%q): missing pid/tid", i, e.Name)
		}
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				name, _ := e.Args["name"].(string)
				if name == "" {
					log.Fatalf("event %d: thread_name metadata without a name", i)
				}
				named[*e.Tid] = name
			}
		case "X":
			ts, err := usec(e.Ts)
			if err != nil {
				log.Fatalf("event %d (%q): bad ts %s: %v", i, e.Name, e.Ts, err)
			}
			dur, err := usec(e.Dur)
			if err != nil {
				log.Fatalf("event %d (%q): bad dur %s: %v", i, e.Name, e.Dur, err)
			}
			if ts < 0 || dur < 0 {
				log.Fatalf("event %d (%q): negative ts/dur (%g, %g)", i, e.Name, ts, dur)
			}
			spans++
			kinds[e.Name]++
			eventTids[*e.Tid]++
		case "i":
			if _, err := usec(e.Ts); err != nil {
				log.Fatalf("event %d (%q): bad ts %s: %v", i, e.Name, e.Ts, err)
			}
			instants++
			kinds[e.Name]++
			eventTids[*e.Tid]++
		default:
			log.Fatalf("event %d (%q): unexpected phase %q", i, e.Name, e.Ph)
		}
	}
	if spans == 0 {
		log.Fatalf("%s: no duration events", os.Args[1])
	}
	for tid := range eventTids {
		if named[tid] == "" {
			log.Fatalf("thread %d has %d events but no thread_name metadata", tid, eventTids[tid])
		}
	}
	fmt.Printf("tracecheck: %s OK — %d spans + %d instants across %d named tracks, %d event kinds\n",
		os.Args[1], spans, instants, len(eventTids), len(kinds))
}
