// Command tracecheck validates a Chrome trace-event JSON file produced by
// the dsmtx tracer (virtual-time or host wall-clock): well-formed JSON, the
// trace-event fields Perfetto requires, monotone non-negative durations,
// per-rank metadata covering every thread that has events, and event names
// restricted to the tracer's published vocabulary (trace.KnownEventNames) —
// so a renamed or misspelled span fails the build rather than silently
// vanishing from timeline queries. Wall-clock traces (top-level
// "clock":"wall", emitted by host runs) additionally promise per-track
// start-time monotonicity — the exporter sorts each rank's span buffer —
// and tracecheck enforces it. CI runs it over the trace-demo,
// resilience-demo and host-trace-demo outputs.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"

	"dsmtx/internal/trace"
)

type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Ts   json.RawMessage `json:"ts"`
	Dur  json.RawMessage `json:"dur"`
	Args map[string]any  `json:"args"`
}

type traceFile struct {
	TraceEvents []event `json:"traceEvents"`
	Clock       string  `json:"clock"` // "wall" on host traces; empty on vtime
}

// metadataNames are the Chrome metadata records the exporter emits beside
// the span/instant vocabulary.
var metadataNames = map[string]bool{
	"process_name":      true,
	"thread_name":       true,
	"thread_sort_index": true,
}

// usec parses a trace timestamp (a JSON number in microseconds, emitted
// with nanosecond precision as %d.%03d).
func usec(raw json.RawMessage) (float64, error) {
	return strconv.ParseFloat(string(raw), 64)
}

// check validates one trace file's bytes and reports a one-line summary.
func check(data []byte) (string, error) {
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return "", fmt.Errorf("not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		return "", fmt.Errorf("no traceEvents")
	}

	known := make(map[string]bool)
	for _, name := range trace.KnownEventNames() {
		known[name] = true
	}
	named := make(map[int]string) // tid -> thread_name from metadata
	eventTids := make(map[int]int)
	spans, instants := 0, 0
	kinds := make(map[string]int)
	lastTs := make(map[int]float64) // tid -> last event ts (wall monotonicity)
	wall := tf.Clock == "wall"
	if tf.Clock != "" && !wall {
		return "", fmt.Errorf("unknown clock %q (have wall, or omit for vtime)", tf.Clock)
	}
	checkMono := func(i int, e *event, ts float64) error {
		if !wall {
			return nil
		}
		if prev, ok := lastTs[*e.Tid]; ok && ts < prev {
			return fmt.Errorf("event %d (%q): wall-clock ts %g regresses below %g on tid %d",
				i, e.Name, ts, prev, *e.Tid)
		}
		lastTs[*e.Tid] = ts
		return nil
	}
	for i, e := range tf.TraceEvents {
		if e.Pid == nil || e.Tid == nil {
			return "", fmt.Errorf("event %d (%q): missing pid/tid", i, e.Name)
		}
		switch e.Ph {
		case "M":
			if !metadataNames[e.Name] {
				return "", fmt.Errorf("event %d: unknown metadata record %q", i, e.Name)
			}
			if e.Name == "thread_name" {
				name, _ := e.Args["name"].(string)
				if name == "" {
					return "", fmt.Errorf("event %d: thread_name metadata without a name", i)
				}
				named[*e.Tid] = name
			}
		case "X":
			if !known[e.Name] {
				return "", fmt.Errorf("event %d: span name %q is not in the tracer vocabulary", i, e.Name)
			}
			ts, err := usec(e.Ts)
			if err != nil {
				return "", fmt.Errorf("event %d (%q): bad ts %s: %v", i, e.Name, e.Ts, err)
			}
			dur, err := usec(e.Dur)
			if err != nil {
				return "", fmt.Errorf("event %d (%q): bad dur %s: %v", i, e.Name, e.Dur, err)
			}
			if ts < 0 || dur < 0 {
				return "", fmt.Errorf("event %d (%q): negative ts/dur (%g, %g)", i, e.Name, ts, dur)
			}
			if err := checkMono(i, &e, ts); err != nil {
				return "", err
			}
			spans++
			kinds[e.Name]++
			eventTids[*e.Tid]++
		case "i":
			if !known[e.Name] {
				return "", fmt.Errorf("event %d: instant name %q is not in the tracer vocabulary", i, e.Name)
			}
			ts, err := usec(e.Ts)
			if err != nil {
				return "", fmt.Errorf("event %d (%q): bad ts %s: %v", i, e.Name, e.Ts, err)
			}
			if err := checkMono(i, &e, ts); err != nil {
				return "", err
			}
			instants++
			kinds[e.Name]++
			eventTids[*e.Tid]++
		default:
			return "", fmt.Errorf("event %d (%q): unexpected phase %q", i, e.Name, e.Ph)
		}
	}
	if spans == 0 {
		return "", fmt.Errorf("no duration events")
	}
	for tid := range eventTids {
		if named[tid] == "" {
			return "", fmt.Errorf("thread %d has %d events but no thread_name metadata", tid, eventTids[tid])
		}
	}
	clk := "vtime"
	if wall {
		clk = "wall clock"
	}
	return fmt.Sprintf("%d spans + %d instants across %d named tracks, %d event kinds (%s)",
		spans, instants, len(eventTids), len(kinds), clk), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	if len(os.Args) != 2 {
		log.Fatal("usage: tracecheck trace.json")
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	summary, err := check(data)
	if err != nil {
		log.Fatalf("%s: %v", os.Args[1], err)
	}
	fmt.Printf("tracecheck: %s OK — %s\n", os.Args[1], summary)
}
