// Package dsmtx is Distributed Software Multi-threaded Transactional
// memory: a software-only runtime that makes thread-level speculation (TLS)
// and speculative pipeline parallelism (Spec-DSWP) work on clusters without
// shared memory, as described in
//
//	Kim, Raman, Liu, Lee, August.
//	"Scalable Speculative Parallelization on Commodity Clusters."
//	MICRO 2010.
//
// A sequential loop is parallelized by wrapping each iteration in a
// multi-threaded transaction (MTX): pipeline stages execute the iteration's
// sub-transactions in private memories on different (simulated) cluster
// nodes, forwarding uncommitted values downstream; a try-commit unit
// validates speculative reads by value against the committed order; a
// commit unit applies each validated MTX atomically and orchestrates
// recovery when speculation fails. Every thread shares a Unified Virtual
// Address space, initialized lazily by Copy-On-Access page transfers.
//
// The cluster here is simulated: the runtime executes workloads for real —
// data moves, speculation fails, recovery re-executes — while time advances
// on a deterministic virtual clock modelling a 32-node InfiniBand cluster.
// That is what lets a laptop reproduce 128-core behaviour exactly.
//
// # Programming model
//
// Implement Program: Setup builds the initial memory state sequentially;
// Stage is the pipeline-stage body each worker runs per iteration; SeqIter
// re-executes an iteration non-speculatively during recovery. Inside Stage,
// the Ctx methods map to the paper's Table 1 API:
//
//	Table 1 (C)              Go
//	-----------              --
//	mtx_begin/mtx_end        implicit around each Stage call
//	mtx_produce/mtx_consume  Ctx.Produce / Ctx.Consume (+ Data/bulk forms)
//	mtx_read                 Ctx.Read, Ctx.ReadBytes (validated loads)
//	mtx_writeAll             Ctx.Write, Ctx.WriteBytes
//	mtx_writeTo              Ctx.WriteTo, Ctx.WriteCommit, Ctx.WriteBytesCommit
//	mtx_misspec              Ctx.Misspec
//	mtx_spawn                NewSystem + System.Run (workers spawn up front)
//	mtx_commitUnit           the built-in commit unit; Committer/Finalizer hooks
//	mtx_tryCommitUnit        the built-in try-commit unit
//	DSMTX_Init/Finalize      NewSystem / end of Run
//
// Plain Ctx.Load/Ctx.Store touch only the worker's private versioned
// memory; TLS-style synchronized dependences use Ctx.SyncSend/SyncRecv.
//
// # Quick start
//
//	plan := dsmtx.SpecDSWP("S", "DOALL", "S")
//	cfg := dsmtx.DefaultConfig(16, plan) // 16 cores: 14 workers + 2 units
//	sys, err := dsmtx.NewSystem(cfg, prog, nil)
//	res, err := sys.Run()
//
// See examples/ for complete programs and internal/workloads for the
// paper's 11 benchmarks.
package dsmtx

import (
	"dsmtx/internal/core"
	"dsmtx/internal/mem"
	"dsmtx/internal/pipeline"
	"dsmtx/internal/sim"
	"dsmtx/internal/tlsrt"
	"dsmtx/internal/trace"
	"dsmtx/internal/uva"
)

// Core runtime types.
type (
	// Config assembles a DSMTX system: core budget, plan, cluster model
	// and cost knobs.
	Config = core.Config
	// System is one configured execution; create with NewSystem, execute
	// with Run.
	System = core.System
	// Result summarizes an execution: elapsed virtual time, commits,
	// misspeculations, recovery phases, traffic.
	Result = core.Result
	// Program is a loop parallelized for DSMTX.
	Program = core.Program
	// Committer is the optional per-MTX commit hook.
	Committer = core.Committer
	// Finalizer is the optional post-loop hook.
	Finalizer = core.Finalizer
	// Ctx is the worker-side API (Table 1 operations).
	Ctx = core.Ctx
	// SeqCtx is the commit-unit-side sequential API.
	SeqCtx = core.SeqCtx
)

// Memory and address-space types.
type (
	// Addr is a unified virtual address, valid identically on every node.
	Addr = uva.Addr
	// Image is a software page table over the unified address space.
	Image = mem.Image
	// Plan is a parallelization scheme in the paper's DSWP+[...] notation.
	Plan = pipeline.Plan
	// Time is virtual time in nanoseconds.
	Time = sim.Time
)

// Observability types: set Config.Tracer to a NewTracer (timeline + metrics)
// or NewMetricsTracer (metrics only) and export with Tracer.WriteChromeTrace
// after Run. A nil Tracer — the default — keeps every runtime hot path on
// the uninstrumented, allocation-free fast path, and tracing never alters
// virtual-time outcomes.
type (
	// Tracer records per-rank virtual-time timelines (subTX, validate,
	// group-commit, Copy-On-Access round trips, recovery phases) and hosts
	// the metrics registry.
	Tracer = trace.Tracer
	// Metrics is the registry of named counters, gauges and histograms.
	Metrics = trace.Metrics
	// StallReport attributes each rank's time across busy, backpressure,
	// starvation, verdict-wait, recovery and blocked (System.StallReport).
	StallReport = trace.StallReport
)

// NewTracer returns a tracer that records timeline spans and metrics.
func NewTracer() *Tracer { return trace.New() }

// NewMetricsTracer returns a tracer that maintains only the metrics
// registry (no timeline events, so no per-event memory growth).
func NewMetricsTracer() *Tracer { return trace.NewMetricsOnly() }

// NewSystem validates cfg and builds an execution of prog. initial, if
// non-nil, seeds committed memory (for chaining parallel invocations).
func NewSystem(cfg Config, prog Program, initial *Image) (*System, error) {
	return core.NewSystem(cfg, prog, initial)
}

// DefaultConfig returns a configuration for the paper's evaluation platform
// (32 nodes x 4 cores over InfiniBand) using totalCores of it.
func DefaultConfig(totalCores int, plan Plan) Config {
	return core.DefaultConfig(totalCores, plan)
}

// RunSequential executes prog single-threaded for n iterations — the
// baseline speedups are measured against.
func RunSequential(cfg Config, prog Program, n uint64, initial *Image) (Time, *Image, error) {
	return core.RunSequential(cfg, prog, n, initial)
}

// SpecDOALL returns the fully parallel one-stage plan.
func SpecDOALL() Plan { return pipeline.SpecDOALL() }

// SpecDSWP builds a "Spec-DSWP+[...]" plan from stage kinds ("S", "DOALL").
func SpecDSWP(kinds ...string) Plan { return pipeline.SpecDSWP(kinds...) }

// DSWP builds a "DSWP+[...]" plan (speculation within stages only).
func DSWP(kinds ...string) Plan { return pipeline.DSWP(kinds...) }

// TLSPlan returns the TLS comparison plan: one parallel stage with a
// synchronization ring for non-speculated loop-carried dependences.
func TLSPlan() Plan { return tlsrt.Plan() }

// NewImage returns an empty authoritative memory image (for standalone
// sequential runs and tests).
func NewImage() *Image { return mem.NewImage(nil) }
